"""SLO rule parsing and evaluation over recorded series."""

import pytest

from repro.obs import (HealthReport, ScrapePoint, SeriesStore,
                       default_soak_rules, evaluate_rules, parse_rule,
                       parse_rules)


def _store(samples_by_time):
    points = []
    for t, samples in samples_by_time:
        points.append(ScrapePoint(float(t), {
            (name, tuple(sorted(labels.items()))): float(value)
            for name, labels, value in samples}))
    return SeriesStore(points)


def _flat(metric, values, dt=1.0):
    return _store([(i * dt, [(metric, {}, value)])
                   for i, value in enumerate(values)])


class TestParsing:
    def test_parse_rule_with_labels_and_params(self):
        rule = parse_rule('quantile lat{stage="tick"} q=0.5 max=2 windows=3')
        assert rule.kind == "quantile"
        assert rule.metric == "lat"
        assert rule.labels == {"stage": "tick"}
        assert rule.params == {"q": 0.5, "max": 2.0, "windows": 3.0}

    def test_spec_round_trips(self):
        line = 'quantile lat{stage="tick"} q=0.5 max=2'
        rule = parse_rule(line)
        again = parse_rule(rule.spec)
        assert again.kind == rule.kind
        assert again.metric == rule.metric
        assert again.labels == rule.labels
        assert again.params == rule.params

    def test_comments_and_blanks_skipped(self):
        rules = parse_rules("""
        # a comment
        zero gaps_total  # trailing comment

        samples min=3
        """)
        assert [rule.kind for rule in rules] == ["zero", "samples"]

    @pytest.mark.parametrize("bad", [
        "frobnicate x",               # unknown kind
        "zero",                       # missing metric
        "ceiling depth",              # missing required max=
        "quantile lat windows=2",     # missing required max=
        "zero depth max",             # parameter without =
        "zero depth max=abc",         # non-numeric parameter
    ])
    def test_bad_rules_raise(self, bad):
        with pytest.raises(ValueError):
            parse_rule(bad)


class TestEvaluation:
    def test_zero_rule(self):
        rules = parse_rules("zero gaps_total")
        assert evaluate_rules(_flat("gaps_total", [0, 0, 0]), rules).passed
        assert not evaluate_rules(_flat("gaps_total", [0, 0, 2]),
                                  rules).passed
        # Absent metric fails: a vanished certificate is not a pass.
        assert not evaluate_rules(_flat("other", [0]), rules).passed

    def test_zero_rule_sums_labels(self):
        store = _store([(0, [("gaps_total", {"shard": "0"}, 0),
                             ("gaps_total", {"shard": "1"}, 1)])])
        assert not evaluate_rules(store,
                                  parse_rules("zero gaps_total")).passed

    def test_ceiling_rule(self):
        rules = parse_rules("ceiling depth max=10")
        assert evaluate_rules(_flat("depth", [1, 10, 3]), rules).passed
        assert not evaluate_rules(_flat("depth", [1, 11, 3]), rules).passed

    def test_samples_rule(self):
        rules = parse_rules("samples min=3")
        assert not evaluate_rules(_flat("c", [1, 2]), rules).passed
        assert evaluate_rules(_flat("c", [1, 2, 3]), rules).passed

    def test_throughput_flatness(self):
        rules = parse_rules("throughput c_total flatness=0.8 windows=3")
        steady = _flat("c_total", [0, 100, 200, 300, 400, 500, 600])
        assert evaluate_rules(steady, rules).passed
        # Collapses in the last third: 300/s ... then nothing.
        sagging = _flat("c_total", [0, 300, 600, 900, 905, 906, 907])
        assert not evaluate_rules(sagging, rules).passed

    def test_throughput_short_series_vacuous(self):
        rules = parse_rules("throughput c_total windows=5")
        assert evaluate_rules(_flat("c_total", [0]), rules).passed

    def test_throughput_never_advancing_fails(self):
        rules = parse_rules("throughput c_total windows=3")
        assert not evaluate_rules(_flat("c_total", [5, 5, 5, 5]),
                                  rules).passed

    def test_quantile_rule_windows(self):
        def snapshot(t, fast, slow):
            return (t, [("lat_bucket", {"le": "0.1"}, fast),
                        ("lat_bucket", {"le": "+Inf"}, fast + slow)])
        fast_store = _store([snapshot(0, 0, 0), snapshot(1, 100, 0),
                             snapshot(2, 200, 1)])
        rules = parse_rules("quantile lat q=0.9 max=0.1 windows=2")
        assert evaluate_rules(fast_store, rules).passed
        slow_store = _store([snapshot(0, 0, 0), snapshot(1, 100, 0),
                             snapshot(2, 100, 50)])
        assert not evaluate_rules(slow_store, rules).passed

    def test_quantile_no_observations_vacuous(self):
        rules = parse_rules("quantile lat max=1")
        assert evaluate_rules(_flat("other", [1, 2, 3]), rules).passed

    def test_slope_rule(self):
        rules = parse_rules("slope rss max_growth=0.25 skip=0.25")
        flat = _flat("rss", [100] * 12)
        assert evaluate_rules(flat, rules).passed
        leaking = _flat("rss", [100 + 20 * i for i in range(12)])
        assert not evaluate_rules(leaking, rules).passed
        # Warmup growth alone is forgiven: skip drops the first quarter.
        warmup = _flat("rss", [50, 80, 100] + [104] * 9)
        assert evaluate_rules(warmup, rules).passed

    def test_report_format_and_dict(self):
        rules = parse_rules("zero gaps_total\nceiling depth max=1")
        store = _store([(0, [("gaps_total", {}, 0), ("depth", {}, 5)])])
        report = evaluate_rules(store, rules)
        assert isinstance(report, HealthReport)
        assert not report.passed
        assert report.verdict == "fail"
        text = report.format()
        assert "RED" in text and "1/2" in text and "FAIL" in text
        payload = report.as_dict()
        assert payload["status"] == "fail"
        assert len(payload["checks"]) == 2
        assert payload["checks"][0]["passed"] is True


class TestDefaults:
    def test_default_soak_rules_parse_and_cover_the_criteria(self):
        rules = default_soak_rules()
        kinds = [rule.kind for rule in rules]
        assert "samples" in kinds
        assert "throughput" in kinds
        assert "slope" in kinds
        metrics = {rule.metric for rule in rules}
        assert "repro_bus_gaps_total" in metrics
        assert "repro_gateway_raw_points_total" in metrics
        assert "repro_process_rss_bytes" in metrics
        # The ruleset is its own documentation: every spec re-parses.
        for rule in rules:
            parse_rule(rule.spec)

    def test_empty_recording_never_goes_green(self):
        report = evaluate_rules(SeriesStore(), default_soak_rules())
        assert not report.passed
