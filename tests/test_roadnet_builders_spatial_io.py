"""Tests of the city builders, the spatial index and edge-list I/O."""

import pytest

from repro.config import RoadNetworkConfig
from repro.exceptions import RoadNetworkError
from repro.roadnet import (
    SpatialIndex,
    build_grid_city,
    build_ring_radial_city,
    dijkstra_route,
    load_edge_list,
    save_edge_list,
)


# ----------------------------------------------------------------- builders
def test_grid_city_sizes(grid_network):
    assert grid_network.num_intersections == 64
    # Two-way streets: at least the border ring exists.
    assert grid_network.num_segments > 100


def test_grid_city_is_deterministic():
    a = build_grid_city(RoadNetworkConfig(grid_rows=6, grid_cols=6, seed=9))
    b = build_grid_city(RoadNetworkConfig(grid_rows=6, grid_cols=6, seed=9))
    assert a.num_segments == b.num_segments
    assert [s.length_m for s in a.segments()] == [s.length_m for s in b.segments()]


def test_grid_city_two_way_streets(grid_network):
    """Every street is two-way, so every segment has a reverse counterpart."""
    for segment in list(grid_network.segments())[:50]:
        reverse = grid_network.segment_between(segment.end_node, segment.start_node)
        assert reverse is not None


def test_grid_city_routes_exist(grid_network):
    segment_ids = grid_network.segment_ids()
    route = dijkstra_route(grid_network, segment_ids[0], segment_ids[-1])
    assert grid_network.is_route_connected(route)


def test_ring_radial_city():
    network = build_ring_radial_city(n_rings=3, nodes_per_ring=12)
    assert network.num_intersections == 1 + 3 * 12
    assert network.num_segments > 0
    route = dijkstra_route(network, network.segment_ids()[0],
                           network.segment_ids()[-1])
    assert network.is_route_connected(route)


def test_ring_radial_rejects_bad_sizes():
    with pytest.raises(RoadNetworkError):
        build_ring_radial_city(n_rings=0)


# ------------------------------------------------------------- spatial index
def test_spatial_index_nearest(line_network):
    index = SpatialIndex(line_network, cell_size_m=50.0)
    segment_id, distance = index.nearest_segment(50.0, 5.0)
    assert segment_id == 0
    assert distance == pytest.approx(5.0)


def test_spatial_index_radius_query(line_network):
    index = SpatialIndex(line_network, cell_size_m=50.0)
    near = index.segments_near(150.0, 0.0, radius_m=60.0)
    found = {segment_id for segment_id, _ in near}
    assert 1 in found
    # Results are sorted by distance.
    distances = [d for _, d in near]
    assert distances == sorted(distances)


def test_spatial_index_rejects_bad_radius(line_network):
    index = SpatialIndex(line_network)
    with pytest.raises(RoadNetworkError):
        index.segments_near(0, 0, radius_m=0)


def test_spatial_index_nearest_raises_when_too_far(line_network):
    index = SpatialIndex(line_network, cell_size_m=50.0)
    with pytest.raises(RoadNetworkError):
        index.nearest_segment(1e7, 1e7, max_radius_m=100.0)


def test_spatial_index_consistent_with_projection(grid_network):
    index = SpatialIndex(grid_network, cell_size_m=150.0)
    x, y = grid_network.segment_midpoint(grid_network.segment_ids()[10])
    segment_id, distance = index.nearest_segment(x, y)
    direct, _, _ = grid_network.project_point(segment_id, x, y)
    assert distance == pytest.approx(direct)


# ---------------------------------------------------------------------- I/O
def test_edge_list_round_trip(tmp_path, line_network):
    path = tmp_path / "network.txt"
    save_edge_list(line_network, path)
    loaded = load_edge_list(path)
    assert loaded.num_intersections == line_network.num_intersections
    assert loaded.num_segments == line_network.num_segments
    for segment in line_network.segments():
        other = loaded.segment(segment.segment_id)
        assert other.start_node == segment.start_node
        assert other.length_m == pytest.approx(segment.length_m)


def test_edge_list_rejects_malformed(tmp_path):
    path = tmp_path / "broken.txt"
    path.write_text("N 0 0.0 0.0\nX what is this\n")
    with pytest.raises(RoadNetworkError):
        load_edge_list(path)


def test_edge_list_skips_comments_and_blank_lines(tmp_path):
    path = tmp_path / "ok.txt"
    path.write_text("# comment\n\nN 0 0 0\nN 1 10 0\nE 0 0 1 10.0 13.9 0\n")
    loaded = load_edge_list(path)
    assert loaded.num_segments == 1
