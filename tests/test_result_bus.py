"""Fuzz, fault-injection, backpressure and soak tests of the results bus.

The bus contract under test (``repro/serve/resultbus.py`` plus the backend
plumbing behind :meth:`DetectionService.finalize_async` /
:meth:`poll_results`): delivery is **at-least-once** — lost drains are
recovered by ``replay`` — while acceptance is **exactly-once and in
per-shard sequence order**, so no interleaving of publishes, drains, acks,
replays and hot-swaps may ever lose a result, deliver one twice to the
caller, or invert a vehicle's order. The unit fuzz drives the raw
``ShardResultBus`` / ``BusCollector`` protocol through hundreds of
randomized schedules; the service fuzz replays randomized fleets through
``finalize_async`` on both backends; around them sit the backpressure
retry-discipline tests (the ``ingest_blocking`` sleep path, a process-
backend ``RETRY_LATER`` storm) and a ``slow``-marked gateway→service→bus
soak that pins queue depth, bus lag and per-vehicle state as bounded.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.config import GatewayConfig
from repro.datagen import sample_gps_trace
from repro.exceptions import GatewayError, ModelError, ServiceError
from repro.ingest import GpsGateway
from repro.mapmatching import HMMMapMatcher
from repro.serve import (BusCollector, IngestEvent, ShardResultBus,
                         clone_model, weights_snapshot)


def assert_results_match(reference, result):
    assert result.labels == reference.labels
    assert result.spans == reference.spans
    assert result.is_anomalous == reference.is_anomalous


# ===================================================== unit-level protocol
def run_bus_protocol_trial(rng, num_shards):
    """One randomized publish/drain/ack/replay schedule, checked exactly.

    Models the real facade protocol plus its two failure modes: a drained
    batch may be *lost in flight* (never reaches the collector), or the
    batch arrives but the *acknowledgement* is lost — in either case the
    next drain replays the unacknowledged window first, the way
    :meth:`DetectionService.replay_results` recovers a lost poll. A lost
    ack forces genuine redelivery of accepted envelopes, which the
    watermark must drop as duplicates. Spurious replays (nothing was lost)
    are thrown in too.
    """
    buses = [ShardResultBus(shard) for shard in range(num_shards)]
    collector = BusCollector(num_shards)
    published = [[] for _ in range(num_shards)]
    accepted = [[] for _ in range(num_shards)]
    lost_drain = [False] * num_shards
    stamp = 0

    def drain(shard, may_lose):
        if lost_drain[shard]:
            buses[shard].replay()
            lost_drain[shard] = False
        batch = buses[shard].take(int(rng.integers(1, 6)))
        if batch and may_lose and rng.random() < 0.25:
            lost_drain[shard] = True  # the batch never reaches the collector
            return
        fresh = collector.offer(batch)
        for envelope in fresh:
            accepted[envelope.shard_id].append((envelope.seq,
                                                envelope.payload))
        if batch and may_lose and rng.random() < 0.25:
            lost_drain[shard] = True  # the *ack* is lost instead
            return
        buses[shard].ack(collector.watermark(shard))

    for _ in range(int(rng.integers(40, 140))):
        shard = int(rng.integers(num_shards))
        roll = rng.random()
        if roll < 0.45:
            for _ in range(int(rng.integers(1, 4))):
                payload = f"payload-{stamp}"
                stamp += 1
                seq = buses[shard].publish("result", f"v{stamp}", payload)
                published[shard].append((seq, payload))
        elif roll < 0.85:
            drain(shard, may_lose=True)
        else:
            buses[shard].replay()  # spurious: redelivers acked-nothing

    # Final settlement: recover every lost drain and empty every bus.
    for shard in range(num_shards):
        while (lost_drain[shard] or buses[shard].depth
               or buses[shard].unacked_count):
            if buses[shard].unacked_count and not lost_drain[shard]:
                buses[shard].replay()
            drain(shard, may_lose=False)

    assert collector.gaps == 0, "an envelope was lost"
    for shard in range(num_shards):
        # Zero loss, exactly-once acceptance, publish order preserved.
        assert accepted[shard] == published[shard]
        seqs = [seq for seq, _ in accepted[shard]]
        assert seqs == sorted(seqs)
        stats = buses[shard].stats()
        assert stats.published == len(published[shard])
        # Redelivery bounds the extra takes — an ack may trim a replayed
        # envelope out of the outbox before it is ever re-taken.
        assert stats.published <= stats.delivered <= \
            stats.published + stats.redelivered
        assert stats.depth == 0 and stats.unacked == 0
        assert stats.acked_seq == (seqs[-1] if seqs else 0)
        assert collector.watermark(shard) == stats.acked_seq
    # Lost batches were taken but never offered: received <= delivered.
    assert collector.received <= sum(b.stats().delivered for b in buses)
    assert collector.accepted == sum(b.stats().published for b in buses)
    assert collector.duplicates == collector.received - collector.accepted


@pytest.mark.parametrize("seed", range(8))
def test_bus_protocol_fuzz(seed):
    """200 randomized schedules (25 per seed), 1-4 shards each: at-least-once
    delivery in, exactly-once in-order acceptance out, zero loss."""
    for trial in range(25):
        rng = np.random.default_rng(seed * 1000 + trial)
        run_bus_protocol_trial(rng, num_shards=int(rng.integers(1, 5)))


def test_bus_take_ack_lifecycle():
    bus = ShardResultBus(0)
    assert [bus.publish("result", v, v) for v in "abc"] == [1, 2, 3]
    assert bus.depth == 3 and bus.unacked_count == 0
    batch = bus.take(2)
    assert [e.seq for e in batch] == [1, 2]
    assert (bus.depth, bus.unacked_count) == (1, 2)
    bus.ack(1)
    assert bus.unacked_count == 1
    bus.ack(2)
    assert bus.unacked_count == 0
    assert [e.seq for e in bus.take()] == [3]
    bus.ack(3)
    stats = bus.stats()
    assert stats.delivered == 3 and stats.acked_seq == 3
    assert stats.lag == 0


def test_replay_preserves_sequence_order():
    bus = ShardResultBus(2)
    for v in range(5):
        bus.publish("result", v, v)
    bus.take(3)  # seqs 1-3 in flight
    assert bus.replay() == 3
    # Replayed envelopes come back *in front of* the fresher outbox.
    assert [e.seq for e in bus.take()] == [1, 2, 3, 4, 5]
    assert bus.stats().redelivered == 3
    assert bus.replay() == 5  # everything is unacked again


def test_ack_trims_replayed_outbox_duplicates():
    bus = ShardResultBus(0)
    for v in range(3):
        bus.publish("result", v, v)
    bus.take()
    bus.replay()  # the whole window is queued for redelivery
    bus.ack(3)    # ...but the subscriber had accepted it all along
    assert bus.depth == 0 and bus.unacked_count == 0


def test_collector_dedups_and_counts_gaps():
    bus = ShardResultBus(0)
    collector = BusCollector(1)
    first = [bus.publish("result", v, v) for v in range(4)]
    assert first == [1, 2, 3, 4]
    batch = bus.take()
    assert len(collector.offer(batch)) == 4
    assert [e.seq for e in collector.offer(batch)] == []  # pure redelivery
    assert collector.duplicates == 4
    assert collector.gaps == 0
    # A gap — only possible if an envelope is truly lost — is *counted*.
    bus.publish("result", "x", "x")
    bus.publish("result", "y", "y")
    lost_then_next = bus.take()[1:]  # seq 5 vanishes
    assert [e.seq for e in collector.offer(lost_then_next)] == [6]
    assert collector.gaps == 1


# ================================================== service-level fuzzing
def _references(model, pool, cache={}):
    detector = model.detector()
    for trajectory in pool:
        if id(trajectory) not in cache:
            cache[id(trajectory)] = detector.detect(trajectory)
    return cache


def run_async_finalize_trial(service, model, pool, references, rng, base,
                             last_seq):
    """One fuzz trial: a random interleaving of ingest (per-point and
    batched), pumps, polls, spurious replays and identical-weights hot-swaps,
    with every stream closed through ``finalize_async`` and collected off
    the bus. Asserts per-shard sequence monotonicity (``last_seq`` persists
    across the service's whole lifetime), exactly-once acceptance and
    label identity with the offline detector."""
    fleet = [pool[int(rng.integers(len(pool)))]
             for _ in range(int(rng.integers(2, 5)))]
    vehicles = [f"{base}/{i}" for i in range(len(fleet))]
    cursors = [0] * len(fleet)
    results = {}

    def absorb(envelopes):
        for envelope in envelopes:
            assert envelope.seq > last_seq.get(envelope.shard_id, 0), \
                "per-shard sequence order violated"
            last_seq[envelope.shard_id] = envelope.seq
            if envelope.kind == "error":
                raise envelope.payload
            assert envelope.kind == "result"
            assert envelope.key not in results, "result accepted twice"
            results[envelope.key] = envelope.payload

    while any(c < len(t.segments) for c, t in zip(cursors, fleet)):
        live = [i for i in range(len(fleet))
                if cursors[i] < len(fleet[i].segments)]
        chosen = [i for i in live if rng.random() < 0.7] or [live[0]]
        events = []
        for i in chosen:
            trajectory, cursor = fleet[i], cursors[i]
            opener = cursor == 0
            events.append(IngestEvent(
                vehicles[i], trajectory.segments[cursor],
                trajectory.destination if opener else None,
                trajectory.start_time_s if opener else 0.0,
                trajectory.trajectory_id if opener else None))
            cursors[i] = cursor + 1
        if rng.random() < 0.5:
            service.ingest_many(events)
        else:
            for event in events:
                service.ingest_blocking(
                    event.vehicle_id, event.segment,
                    destination=event.destination,
                    start_time_s=event.start_time_s,
                    trajectory_id=event.trajectory_id)
        finished = [i for i in chosen
                    if cursors[i] == len(fleet[i].segments)]
        if finished:
            service.finalize_async([vehicles[i] for i in finished])
        if rng.random() < 0.4:
            service.pump()
        if rng.random() < 0.1:
            service.replay_results()  # at-least-once: must change nothing
        if rng.random() < 0.05:
            service.swap_model(weights_snapshot(model))  # identical weights
        if rng.random() < 0.3:
            absorb(service.poll_results())
    absorb(service.drain_results())

    assert set(results) == set(vehicles)
    assert service.results_pending == 0
    for i, vehicle in enumerate(vehicles):
        assert_results_match(references[id(fleet[i])], results[vehicle])


TRIALS = {"inprocess": 100, "process": 16}


@pytest.mark.fleet
@pytest.mark.parametrize("backend,num_shards", [("inprocess", 2),
                                                ("process", 2)])
def test_finalize_async_fuzz_preserves_labels_and_order(
        trained_model, dataset_split, backend, num_shards):
    """Satellite acceptance: seeded randomized interleavings on one
    long-lived service per backend (100 in-process + 16 process trials) —
    per-shard sequence monotonicity, dedup by sequence number, zero loss,
    labels pinned to the offline detector throughout."""
    _, development, test = dataset_split
    pool = sorted(list(test) + list(development), key=len)[:20]
    references = _references(trained_model, pool)
    last_seq = {}
    with trained_model.detection_service(
            num_shards=num_shards, backend=backend,
            queue_depth=32) as service:
        for trial in range(TRIALS[backend]):
            rng = np.random.default_rng(9000 + trial)
            run_async_finalize_trial(service, trained_model, pool,
                                     references, rng, f"t{trial}", last_seq)
        metrics = service.metrics()
    assert metrics.results_pending == 0
    assert metrics.results_delivered >= 2 * TRIALS[backend]
    assert metrics.async_finalizes >= TRIALS[backend]
    assert sum(stats.published for stats in metrics.bus) == \
        metrics.results_delivered
    assert "results bus:" in metrics.format()


@pytest.mark.parametrize("backend", ["inprocess", "process"])
def test_replay_after_lost_drain_redelivers_everything(
        trained_model, dataset_split, backend):
    """Fault injection: a drain that never reaches the collector (taken off
    the backend, dropped on the floor) is fully recovered by
    ``replay_results`` — zero loss, zero double-acceptance."""
    _, _, test = dataset_split
    fleet = test[:4]
    detector = trained_model.detector()
    with trained_model.detection_service(
            num_shards=2, backend=backend) as service:
        for index, trajectory in enumerate(fleet):
            service.ingest_many([IngestEvent(
                index, segment,
                trajectory.destination if position == 0 else None,
                trajectory.start_time_s if position == 0 else 0.0,
                trajectory.trajectory_id if position == 0 else None)
                for position, segment in enumerate(trajectory.segments)])
        service.finalize_async(range(len(fleet)))
        lost = []
        deadline = time.perf_counter() + 30.0
        while len(lost) < len(fleet):
            service.pump()
            lost.extend(service._backend.take_results())
            assert time.perf_counter() < deadline, "bus never published"
        assert service.results_pending == len(fleet)
        replayed = service.replay_results()
        assert replayed == len(fleet)
        envelopes = service.drain_results()
        metrics = service.metrics()
    assert sorted(e.key for e in envelopes) == list(range(len(fleet)))
    for envelope in envelopes:
        assert_results_match(detector.detect(fleet[envelope.key]),
                             envelope.payload)
    assert metrics.bus_redelivered == replayed
    assert metrics.results_duplicates == 0  # nothing was accepted twice
    assert metrics.results_pending == 0


@pytest.mark.parametrize("backend", ["inprocess", "process"])
def test_error_envelope_carries_shard_failure(trained_model, dataset_split,
                                              backend):
    """A shard-side async-finalize failure (declared destination never
    reached) arrives as one ``"error"`` envelope instead of vanishing."""
    _, _, test = dataset_split
    trajectory = next(t for t in test
                      if len(t) >= 3 and t.segments[1] != t.destination)
    with trained_model.detection_service(
            num_shards=1, backend=backend) as service:
        service.ingest_blocking("cab", trajectory.segments[0],
                                destination=trajectory.destination)
        service.ingest_blocking("cab", trajectory.segments[1])
        service.finalize_async(["cab"])
        envelopes = service.drain_results()
        assert [e.kind for e in envelopes] == ["error"]
        assert envelopes[0].key == ("cab",)
        assert isinstance(envelopes[0].payload, ModelError)
        assert service.results_pending == 0


def test_finalize_async_validates_synchronously(trained_model, dataset_split):
    _, _, test = dataset_split
    with trained_model.detection_service(num_shards=1) as service:
        assert service.finalize_async([]) == 0
        with pytest.raises(ServiceError):
            service.finalize_async(["ghost"])
        service.ingest_blocking("cab", test[0].segments[0])
        with pytest.raises(ServiceError):
            service.finalize_async(["cab", "cab"])
        assert service.poll_results() == []
        assert service.drain_results() == []  # nothing pending: no-op
        assert service.results_pending == 0
        assert service.active_vehicles == ["cab"]  # validation queued nothing


# ============================================================ backpressure
def test_inprocess_retry_sleeps_when_pump_makes_no_progress(
        trained_model, dataset_split, monkeypatch):
    """The ``ingest_blocking`` sleep path: deferred streams (undeclared
    destination) make every pump label nothing, so each of the 100+
    rejections must fall through to the retry sleep — and the retried
    points still lose nothing against a reference engine."""
    _, development, test = dataset_split
    fleet = sorted(list(test) + list(development), key=len, reverse=True)[:12]
    assert sum(len(t) for t in fleet) > 110

    engine = clone_model(trained_model).stream_engine()
    cursors = [0] * len(fleet)
    while any(c < len(t.segments) for c, t in zip(cursors, fleet)):
        for index, trajectory in enumerate(fleet):
            if cursors[index] < len(trajectory.segments):
                engine.ingest(index, trajectory.segments[cursors[index]],
                              start_time_s=(trajectory.start_time_s
                                            if cursors[index] == 0 else 0.0))
                cursors[index] += 1
    reference = engine.finalize_many(range(len(fleet)))

    sleeps = 0

    def counting_sleep(seconds):
        nonlocal sleeps
        sleeps += 1

    monkeypatch.setattr("repro.serve.service.time.sleep", counting_sleep)
    with trained_model.detection_service(
            num_shards=1, backend="inprocess", queue_depth=1) as service:
        cursors = [0] * len(fleet)
        while any(c < len(t.segments) for c, t in zip(cursors, fleet)):
            for index, trajectory in enumerate(fleet):
                if cursors[index] < len(trajectory.segments):
                    kwargs = ({"start_time_s": trajectory.start_time_s}
                              if cursors[index] == 0 else {})
                    service.ingest_blocking(index, trajectory.segments[
                        cursors[index]], **kwargs)
                    cursors[index] += 1
        metrics = service.metrics()
        results = service.finalize_many(range(len(fleet)))
    assert metrics.rejected_ingests >= 100
    assert sleeps >= 100  # every retry pumped 0 points and hit the sleep
    assert metrics.accepted_ingests == sum(len(t) for t in fleet)
    for expected, result in zip(reference, results):
        assert_results_match(expected, result)


class _StallPlane:
    """A worker plane whose only job is to nap on command."""

    def __init__(self, shard_id, engine):
        self.shard_id = shard_id

    def handle(self, command):
        time.sleep(command)

    def request(self, command):
        return None

    def stats(self):
        return None


class StallPlaneFactory:
    """Picklable factory shipping :class:`_StallPlane` into shard workers."""

    def __call__(self, shard_id, engine):
        return _StallPlane(shard_id, engine)


@pytest.mark.fleet
def test_process_backend_rides_out_retry_later_storm(trained_model,
                                                     dataset_split):
    """A stalled worker turns a bounded command queue into a RETRY_LATER
    storm; ``ingest_blocking`` rides out well over 100 rejections on one
    stream and the labels come out untouched."""
    _, _, test = dataset_split
    trajectory = max(test, key=len)
    reference = trained_model.detector().detect(trajectory)
    with trained_model.detection_service(
            num_shards=1, backend="process", queue_depth=4) as service:
        service.install_plane(StallPlaneFactory())
        service.ingest_blocking("cab", trajectory.segments[0],
                                destination=trajectory.destination,
                                start_time_s=trajectory.start_time_s)
        service.drain()
        service.plane_send_many(0, [1.0])  # the worker naps for a second
        storm = 0
        for segment in trajectory.segments[1:]:
            storm += service.ingest_blocking("cab", segment,
                                             retry_wait_s=0.001)
        assert storm >= 100
        metrics = service.metrics()
        assert metrics.rejected_ingests == storm
        result = service.finalize("cab")
    assert_results_match(reference, result)


# ==================================================================== soak
@pytest.mark.slow
@pytest.mark.fleet
def test_soak_gateway_to_bus_stays_bounded(trained_model, dataset,
                                           dataset_split):
    """Mini-soak: ~50k synthetic GPS fixes through gateway → service → bus
    with async sessions, vehicle turnover and LRU eviction. Queue depth,
    bus lag, pending sessions and per-vehicle state must stay bounded, the
    second half must not collapse below half the first half's throughput,
    and not one session may be lost."""
    _, development, test = dataset_split
    pool = list(test) + list(development)
    rng = np.random.default_rng(7)
    traces = [sample_gps_trace(dataset.network, truth.segments,
                               truth.start_time_s, rng, gps_noise_m=1.5,
                               trajectory_id=truth.trajectory_id)
              for truth in pool[:40]]
    matcher = HMMMapMatcher(dataset.network)
    target = 50_000
    slots = 24
    config = GatewayConfig(async_sessions=True, max_vehicles=28,
                           ingest_batch=32, session_gap_s=1e9)
    queue_depth = 256
    with trained_model.detection_service(
            num_shards=1, backend="inprocess",
            queue_depth=queue_depth) as service:
        gateway = GpsGateway(service, matcher, config)
        next_vehicle = 0
        next_trace = 0

        def fresh_slot():
            nonlocal next_vehicle, next_trace
            slot = (next_vehicle, traces[next_trace % len(traces)], 0)
            next_vehicle += 1
            next_trace += 1
            return slot

        active = [fresh_slot() for _ in range(slots)]
        pushed = 0
        collected = 0
        rounds = 0
        started = time.perf_counter()
        half_elapsed = None
        while pushed < target:
            for index, (vehicle, trace, cursor) in enumerate(active):
                if cursor >= len(trace.points):
                    # Abandon the finished vehicle: LRU eviction (not an
                    # explicit end) must close its session over the bus.
                    active[index] = fresh_slot()
                    vehicle, trace, cursor = active[index]
                point = trace.points[cursor]
                gateway.push(vehicle, point.x, point.y, point.t,
                             start_time_s=(trace.start_time_s
                                           if cursor == 0 else None))
                active[index] = (vehicle, trace, cursor + 1)
                pushed += 1
            gateway.pump()
            collected += len(gateway.poll_sessions())
            rounds += 1
            if half_elapsed is None and pushed >= target // 2:
                half_elapsed = time.perf_counter() - started
            if rounds % 64 == 0:
                metrics = service.metrics()
                assert all(s.queue_depth <= queue_depth
                           for s in metrics.shards)
                assert metrics.bus_lag <= 1024, "bus backlog unbounded"
                assert len(gateway.active_vehicles) <= config.max_vehicles
                assert gateway.pending_sessions <= 4 * slots
        full_elapsed = time.perf_counter() - started
        gateway.end_all()
        collected += len(gateway.drain_sessions())
        stats = gateway.stats()
        assert service._collector.gaps == 0
        assert service.results_pending == 0
    assert gateway.pending_sessions == 0
    assert stats.raw_points == pushed >= target
    # Zero loss: every opened session is accounted for — closed sessions
    # all produced a collected result, the rest were (counted) no-match
    # drops; nothing is left open or in flight.
    assert collected == stats.sessions_closed
    assert stats.sessions_opened == stats.sessions_closed + \
        stats.sessions_dropped
    assert stats.vehicles_evicted > 0, "the soak never exercised eviction"
    # Memory-flat proxy: throughput must not degrade as vehicles turn over
    # (a leaking cache or vehicle table would slow the second half down).
    second_half = full_elapsed - half_elapsed
    assert second_half < 2.5 * half_elapsed, (
        f"throughput degraded: first half {half_elapsed:.2f}s, "
        f"second half {second_half:.2f}s")
