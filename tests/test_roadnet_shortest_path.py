"""Tests of Dijkstra routing and k-shortest routes."""

import pytest

from repro.exceptions import DisconnectedRouteError, RoadNetworkError
from repro.roadnet import RoadNetwork, dijkstra_route, k_shortest_routes, route_length
from repro.roadnet.shortest_path import (
    route_travel_time,
    shortest_path_cost,
    travel_time_cost,
)


def test_dijkstra_prefers_direct_route(line_network):
    route = dijkstra_route(line_network, 0, 2)
    assert route == [0, 1, 2]


def test_dijkstra_same_segment(line_network):
    assert dijkstra_route(line_network, 1, 1) == [1]


def test_dijkstra_respects_banned_segments(line_network):
    route = dijkstra_route(line_network, 0, 2, banned_segments={1})
    assert route == [0, 3, 4, 2]


def test_dijkstra_unknown_segment(line_network):
    with pytest.raises(RoadNetworkError):
        dijkstra_route(line_network, 0, 99)


def test_dijkstra_disconnected():
    network = RoadNetwork()
    for node_id, (x, y) in enumerate([(0, 0), (10, 0), (20, 0), (30, 0)]):
        network.add_intersection(node_id, x, y)
    network.add_segment(0, 0, 1)
    network.add_segment(1, 2, 3)
    with pytest.raises(DisconnectedRouteError):
        dijkstra_route(network, 0, 1)


def test_route_length_and_travel_time(line_network):
    route = [0, 1, 2]
    assert route_length(line_network, route) == pytest.approx(300.0)
    assert route_travel_time(line_network, route) > 0


def test_shortest_path_cost_excludes_source(line_network):
    cost = shortest_path_cost(line_network, 0, 2)
    assert cost == pytest.approx(200.0)


def test_travel_time_cost_function(line_network):
    segment = line_network.segment(0)
    assert travel_time_cost(segment) == pytest.approx(segment.travel_time_s)


def test_k_shortest_routes_returns_distinct_loopless_routes(line_network):
    routes = k_shortest_routes(line_network, 0, 2, k=3)
    assert routes[0] == [0, 1, 2]
    assert [0, 3, 4, 2] in routes
    assert len({tuple(r) for r in routes}) == len(routes)
    for route in routes:
        assert line_network.is_route_connected(route)
        assert len(set(route)) == len(route)


def test_k_shortest_routes_ordered_by_cost(grid_network):
    ids = grid_network.segment_ids()
    routes = k_shortest_routes(grid_network, ids[0], ids[-1], k=3)
    lengths = [route_length(grid_network, r) for r in routes]
    assert lengths == sorted(lengths)


def test_k_shortest_routes_k_must_be_positive(line_network):
    with pytest.raises(RoadNetworkError):
        k_shortest_routes(line_network, 0, 2, k=0)


def test_k_shortest_routes_unreachable_returns_empty():
    network = RoadNetwork()
    for node_id, (x, y) in enumerate([(0, 0), (10, 0), (20, 0), (30, 0)]):
        network.add_intersection(node_id, x, y)
    network.add_segment(0, 0, 1)
    network.add_segment(1, 2, 3)
    assert k_shortest_routes(network, 0, 1, k=2) == []
