"""Unit tests of the versioned route-history subsystem (``repro.history``).

The contracts pinned here: snapshots are immutable and monotonically
versioned; ``extend`` is copy-on-write with structural sharing (untouched SD
pairs keep their group tuples *and* their memoized derived values by
identity); serialization strips the memo caches but preserves the data and
the version; and the preprocessing pipeline is a thin, swappable view whose
feature resolution can be pinned to any snapshot.
"""

from __future__ import annotations

import pickle

import pytest

from repro.config import LabelingConfig
from repro.exceptions import LabelingError
from repro.history import (HistorySnapshot, RouteHistoryStore, clone_snapshot,
                           snapshot_from_bytes, snapshot_to_bytes)
from repro.labeling import PreprocessingPipeline
from repro.trajectory import MatchedTrajectory


def make(tid, segments, start=0.0):
    return MatchedTrajectory(trajectory_id=tid, segments=segments,
                             start_time_s=start)


@pytest.fixture
def seed_trajectories():
    """Two SD pairs: (1 -> 10) with a dominant route, and (20 -> 30)."""
    pair_a = [make(i, [1, 2, 3, 10]) for i in range(6)]
    pair_a += [make(6, [1, 2, 4, 10])]
    pair_b = [make(10 + i, [20, 21, 30]) for i in range(4)]
    return pair_a + pair_b


# ----------------------------------------------------------------- versions
def test_store_versions_are_monotone(seed_trajectories):
    store = RouteHistoryStore(seed_trajectories, slots_per_day=24)
    assert store.version == 1
    first = store.current()
    second = store.extend([make(100, [1, 2, 3, 10])])
    assert second.version == 2
    assert store.current() is second
    third = store.rebuild(seed_trajectories)
    assert third.version == 3
    # The old snapshot is untouched — readers pinned to it see version 1.
    assert first.version == 1
    assert len(first) == len(seed_trajectories)


def test_empty_extend_burns_no_version(seed_trajectories):
    store = RouteHistoryStore(seed_trajectories)
    current = store.current()
    assert store.extend([]) is current
    assert store.version == 1
    assert store.extends == 0


def test_snapshot_rejects_bad_construction():
    with pytest.raises(LabelingError):
        HistorySnapshot.build([], slots_per_day=0)
    with pytest.raises(LabelingError):
        HistorySnapshot.build([], slots_per_day=24, version=0)
    with pytest.raises(LabelingError):
        RouteHistoryStore.from_snapshot("not a snapshot")


def test_adopt_checks_slot_compatibility(seed_trajectories):
    store = RouteHistoryStore(seed_trajectories, slots_per_day=24)
    other = HistorySnapshot.build(seed_trajectories, slots_per_day=12,
                                  version=5)
    with pytest.raises(LabelingError):
        store.adopt(other)
    compatible = HistorySnapshot.build(seed_trajectories, slots_per_day=24,
                                       version=7)
    store.adopt(compatible)
    assert store.version == 7
    # extend counts on from the adopted version.
    assert store.extend([make(200, [1, 2, 3, 10])]).version == 8


# ------------------------------------------------------- structural sharing
def test_extend_shares_untouched_pairs(seed_trajectories):
    store = RouteHistoryStore(seed_trajectories)
    before = store.current()
    after = store.extend([make(100, [1, 2, 4, 10])])  # touches (1, 10) only
    groups_before = before.groups()
    groups_after = after.groups()
    for key in groups_before:
        if (key.source, key.destination) == (20, 30):
            assert groups_after[key] is groups_before[key]  # shared tuple
        else:
            assert groups_after[key] is not groups_before[key]
    assert len(after.group(1, 10)) == len(before.group(1, 10)) + 1
    assert len(after) == len(before) + 1


def test_extend_carries_derived_caches_of_untouched_pairs(seed_trajectories):
    store = RouteHistoryStore(seed_trajectories)
    snapshot = store.current()
    sentinel_b = object()
    sentinel_a = object()
    key_b = (20, 30, 0, "cfg")
    key_a = (1, 10, 0, "cfg")
    assert snapshot.cached_statistics(key_b, lambda: sentinel_b) is sentinel_b
    assert snapshot.cached_statistics(key_a, lambda: sentinel_a) is sentinel_a
    extended = store.extend([make(100, [1, 2, 4, 10])])  # touches (1, 10)
    # Untouched pair's memo survives; the touched pair's entry was dropped.
    assert extended.cached_statistics(
        key_b, lambda: pytest.fail("should be cached")) is sentinel_b
    fresh = object()
    assert extended.cached_statistics(key_a, lambda: fresh) is fresh


def test_extend_invalidates_all_slots_of_a_touched_pair(seed_trajectories):
    """The sparse-slot fallback makes every slot of a pair depend on the
    pair's full history, so a refresh must drop them all."""
    store = RouteHistoryStore(seed_trajectories)
    snapshot = store.current()
    sentinel = object()
    other_slot_key = (1, 10, 13, "cfg")
    snapshot.cached_routes(other_slot_key, lambda: sentinel)
    # The new trajectory lands in slot 0, but slot 13's entry must go too.
    extended = store.extend([make(100, [1, 2, 4, 10], start=0.0)])
    fresh = object()
    assert extended.cached_routes(other_slot_key, lambda: fresh) is fresh


# ------------------------------------------------------------ serialization
def test_snapshot_round_trip_preserves_data_and_version(seed_trajectories):
    store = RouteHistoryStore(seed_trajectories)
    store.extend([make(100, [1, 2, 4, 10])])
    snapshot = store.current()
    snapshot.cached_statistics(("x",), lambda: "memo")  # populate a cache
    restored = snapshot_from_bytes(snapshot_to_bytes(snapshot))
    assert restored.version == snapshot.version
    assert restored.slots_per_day == snapshot.slots_per_day
    assert len(restored) == len(snapshot)
    assert restored.pair_sizes() == snapshot.pair_sizes()
    assert restored.sd_pairs() == snapshot.sd_pairs()
    # Memo caches are stripped: a receiver recomputes from its own queries.
    fresh = object()
    assert restored.cached_statistics(("x",), lambda: fresh) is fresh


def test_clone_snapshot_shares_no_memo(seed_trajectories):
    snapshot = HistorySnapshot.build(seed_trajectories)
    snapshot.cached_routes(("k",), lambda: "original")
    clone = clone_snapshot(snapshot)
    assert clone is not snapshot
    assert clone.cached_routes(("k",), lambda: "independent") == "independent"
    assert snapshot.cached_routes(("k",), lambda: None) == "original"


def test_snapshot_from_bytes_rejects_foreign_payloads():
    with pytest.raises(LabelingError):
        snapshot_from_bytes(pickle.dumps({"not": "a snapshot"}))


# ----------------------------------------------------------- read interface
def test_snapshot_mirrors_sd_index_reads(seed_trajectories):
    snapshot = HistorySnapshot.build(seed_trajectories)
    assert len(snapshot.group(1, 10)) == 7
    assert snapshot.group(1, 10, time_slot=0)  # all start at t=0 -> slot 0
    assert snapshot.group(1, 10, time_slot=13) == []
    assert snapshot.group(99, 98) == []
    probe = make(500, [20, 29, 30], start=0.0)
    assert len(snapshot.group_for(probe)) == 4
    # A slot with no history falls back to the pair's full history.
    late = make(501, [20, 29, 30], start=13 * 3600.0)
    assert len(snapshot.group_for(late)) == 4
    assert snapshot.sd_pairs() == [(1, 10), (20, 30)]
    assert snapshot.segment_universe() == {1, 2, 3, 4, 10, 20, 21, 30}
    assert sorted(t.trajectory_id for t in snapshot.trajectories()) == sorted(
        t.trajectory_id for t in seed_trajectories)


# -------------------------------------------------------- pipeline as view
def test_pipeline_is_a_view_over_the_store(dataset, dataset_split):
    train, _, test = dataset_split
    pipeline = PreprocessingPipeline(dataset.network, train[:100],
                                     LabelingConfig(alpha=0.35, delta=0.25))
    assert pipeline.history.version == 1
    assert pipeline.store.current() is pipeline.history
    assert len(pipeline.sd_index) == 100
    snapshot = pipeline.extend_history(train[100:120])
    assert snapshot.version == 2
    assert pipeline.history is snapshot
    assert len(pipeline.sd_index) == 120


def test_pipeline_with_history_shares_vocabulary(dataset, dataset_split):
    train, _, test = dataset_split
    pipeline = PreprocessingPipeline(dataset.network, train[:100],
                                     LabelingConfig(alpha=0.35, delta=0.25))
    old = pipeline.history
    pipeline.extend_history(train[100:150])
    view = pipeline.with_history(old)
    assert view.vocabulary is pipeline.vocabulary
    assert view.network is pipeline.network
    assert view.history is old
    assert view.history.version == 1
    # The view resolves against the old snapshot; the original moved on.
    trajectory = test[0]
    assert (view.statistics_for(trajectory)
            is not pipeline.statistics_for(trajectory))


def test_pipeline_load_history_repins_future_resolutions(dataset,
                                                         dataset_split):
    train, _, test = dataset_split
    pipeline = PreprocessingPipeline(dataset.network, train[:100],
                                     LabelingConfig(alpha=0.35, delta=0.25))
    old = pipeline.history
    refreshed = old.extended(train[100:150], version=9)
    pipeline.load_history(refreshed)
    assert pipeline.history.version == 9
    # Explicit pinning still reaches the old snapshot.
    trajectory = test[0]
    old_stats = pipeline.statistics_for(trajectory, history=old)
    new_stats = pipeline.statistics_for(trajectory)
    assert old_stats is not new_stats


def test_pipeline_rejects_conflicting_history_arguments(dataset,
                                                        dataset_split):
    train, _, _ = dataset_split
    snapshot = HistorySnapshot.build(train[:10], slots_per_day=24)
    with pytest.raises(LabelingError):
        PreprocessingPipeline(dataset.network, train[:10],
                              history=snapshot)
    with pytest.raises(LabelingError):
        PreprocessingPipeline(dataset.network, history="bogus")
    mismatched = HistorySnapshot.build(train[:10], slots_per_day=12)
    with pytest.raises(LabelingError):
        PreprocessingPipeline(dataset.network, history=mismatched)
    pipeline = PreprocessingPipeline(dataset.network, history=snapshot)
    assert pipeline.history is snapshot
    with pytest.raises(LabelingError):
        pipeline.with_history(mismatched)
    with pytest.raises(LabelingError):
        pipeline.with_history(42)


def test_extend_drops_query_derived_fallback_entries(dataset, dataset_split):
    """A no-history SD pair's statistics are derived from the query
    trajectory and memoized for within-version determinism — but a refresh
    must reset them (the pre-refresh pipeline cleared its caches wholesale),
    or the first query ever seen would define that pair's 'normal route'
    forever."""
    from repro.trajectory import MatchedTrajectory

    train, _, test = dataset_split
    pipeline = PreprocessingPipeline(dataset.network, train[:100],
                                     LabelingConfig(alpha=0.35, delta=0.25))
    segments = test[0].segments
    ghost = MatchedTrajectory(9001, [segments[0], segments[1]],
                              start_time_s=0.0)
    assert pipeline.sd_group(ghost.source, ghost.destination) == []
    first = pipeline.statistics_for(ghost)
    assert pipeline.statistics_for(ghost) is first  # memoized within version
    pipeline.extend_history(train[100:110])  # unrelated pairs
    after = pipeline.statistics_for(ghost)
    assert after is not first  # the refresh reset the fallback entry
    # Pure (non-fallback) entries of untouched pairs still carry forward —
    # that is the structural-sharing win the fallback rule must not break.
    touched = {(t.source, t.destination) for t in train[100:110]}
    untouched = next(t for t in test
                     if (t.source, t.destination) not in touched
                     and pipeline.sd_group(t.source, t.destination,
                                           t.start_time_s))
    cached = pipeline.statistics_for(untouched)
    pipeline.extend_history(train[110:112])
    still_untouched = {(t.source, t.destination) for t in train[110:112]}
    if (untouched.source, untouched.destination) not in still_untouched:
        assert pipeline.statistics_for(untouched) is cached
