"""The ``repro`` CLI: parsing, the soak harness end to end, bench files."""

import json

import pytest

from repro import __version__
from repro.cli.bench import KNOWN_BENCHES, append_trajectory
from repro.cli.main import build_parser, main
from repro.cli.soak import SoakHarness, SoakOptions
from repro.obs.timeseries import load_series


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as result:
            main(["--version"])
        assert result.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "soak" in capsys.readouterr().out

    def test_every_subcommand_registers(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("serve", "replay", "soak", "bench", "report"):
            assert command in text

    def test_soak_accepts_a_million_fixes(self):
        parser = build_parser()
        args = parser.parse_args(["soak", "--fixes", "1000000"])
        assert args.fixes == 1_000_000
        assert args.func is not None


@pytest.fixture(scope="module")
def soak_outcome(tmp_path_factory):
    """One micro soak run shared by the harness assertions below."""
    record = tmp_path_factory.mktemp("soak") / "series.jsonl"
    # Micro scale: the run is ~0.5s, so the flat-throughput floor is
    # loosened to window jitter — the CI smoke run (50k fixes) is where
    # the real 0.8x property is enforced. This fixture pins the plumbing:
    # scrape-only verdict, recording, sidecar, report agreement.
    options = SoakOptions(
        fixes=6_000, smoke=True, shards=1, backend="inprocess",
        concurrency=16, drift_parts=2, scrape_interval_s=0.05,
        min_samples=2, flatness=0.25, record=str(record), quiet=True)
    harness = SoakHarness(options)
    report = harness.run()
    return harness, report, record


class TestSoakHarness:
    def test_verdict_green_via_scrapes_only(self, soak_outcome):
        harness, report, _ = soak_outcome
        assert report.passed, report.format()
        rules = {result.rule.split()[1] for result in report.results
                 if len(result.rule.split()) > 1}
        assert "repro_bus_gaps_total" in rules

    def test_driver_bookkeeping(self, soak_outcome):
        harness, _, _ = soak_outcome
        assert harness.fixes_pushed >= 2_000
        assert harness.sessions_done > 0
        assert harness.fine_tunes == 1  # one part boundary for 2 parts
        assert harness.recorder.errors == 0

    def test_recording_and_sidecar_written(self, soak_outcome):
        harness, _, record = soak_outcome
        store = load_series(record)
        assert len(store) == len(harness.recorder.store)
        assert store.counter_delta("repro_gateway_raw_points_total") > 0
        sidecar = record.parent / (record.name + ".rules")
        assert "zero repro_bus_gaps_total" in \
            sidecar.read_text(encoding="utf-8")

    def test_report_command_agrees(self, soak_outcome, capsys):
        _, report, record = soak_outcome
        code = main(["report", str(record)])
        output = capsys.readouterr().out
        assert code == 0
        assert "GREEN" in output
        assert "raw fixes" in output


class TestBench:
    def test_append_trajectory_grows(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        assert append_trajectory(path, {"n": 1}) == 1
        assert append_trajectory(path, {"n": 2}) == 2
        entries = json.loads(path.read_text(encoding="utf-8"))
        assert [entry["n"] for entry in entries] == [1, 2]

    def test_append_recovers_from_corrupt_file(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("not json", encoding="utf-8")
        assert append_trajectory(path, {"n": 1}) == 1

    def test_bench_subcommand_aggregates_stub_runs(self, tmp_path, capsys):
        stub_dir = tmp_path / "benchmarks"
        stub_dir.mkdir()
        (stub_dir / KNOWN_BENCHES["stream_throughput"]).write_text(
            "import json, sys\n"
            "path = sys.argv[sys.argv.index('--json') + 1]\n"
            "smoke = '--smoke' in sys.argv\n"
            "json.dump({'points_per_second': 123, 'smoke': smoke},"
            " open(path, 'w'))\n",
            encoding="utf-8")
        out_dir = tmp_path / "out"  # not created: bench must mkdir it
        argv = ["bench", "stream_throughput", "--smoke",
                "--benchmarks-dir", str(stub_dir),
                "--out-dir", str(out_dir)]
        assert main(argv) == 0
        assert main(argv) == 0
        trajectory = out_dir / "BENCH_stream_throughput.json"
        entries = json.loads(trajectory.read_text(encoding="utf-8"))
        assert len(entries) == 2
        for entry in entries:
            assert entry["payload"]["points_per_second"] == 123
            assert entry["payload"]["smoke"] is True
            assert entry["smoke"] is True
            assert entry["recorded_at"]
            assert entry["host"]["cores"] >= 1

    def test_unknown_bench_name_rejected(self, capsys):
        assert main(["bench", "no_such_bench"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err
