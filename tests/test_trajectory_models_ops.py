"""Tests of the trajectory data model and label/span operations."""

import pytest

from repro.exceptions import EmptyTrajectoryError, TrajectoryError
from repro.trajectory import (
    GPSPoint,
    MatchedTrajectory,
    RawTrajectory,
    Subtrajectory,
    split_by_labels,
    subtrajectory_spans,
    transitions_of,
)
from repro.trajectory.ops import SOURCE_PAD, anomalous_fraction, labels_from_spans


def make_matched(segments, labels=None, start=0.0):
    return MatchedTrajectory(trajectory_id=1, segments=list(segments),
                             start_time_s=start, labels=labels)


# ------------------------------------------------------------ raw trajectory
def test_raw_trajectory_basic():
    raw = RawTrajectory(1, [GPSPoint(0, 0, 0.0), GPSPoint(5, 5, 2.0)])
    assert len(raw) == 2
    assert raw.duration_s == pytest.approx(2.0)
    assert [p.t for p in raw] == [0.0, 2.0]


def test_raw_trajectory_requires_points():
    with pytest.raises(EmptyTrajectoryError):
        RawTrajectory(1, [])


def test_raw_trajectory_requires_monotone_time():
    with pytest.raises(TrajectoryError):
        RawTrajectory(1, [GPSPoint(0, 0, 5.0), GPSPoint(1, 1, 1.0)])


# -------------------------------------------------------- matched trajectory
def test_matched_trajectory_properties():
    trajectory = make_matched([4, 5, 6, 7], labels=[0, 1, 1, 0])
    assert trajectory.source == 4
    assert trajectory.destination == 7
    assert trajectory.sd_pair == (4, 7)
    assert trajectory.is_anomalous
    assert trajectory.route_key() == (4, 5, 6, 7)
    assert list(trajectory) == [4, 5, 6, 7]


def test_matched_trajectory_not_anomalous_without_ones():
    assert not make_matched([1, 2], labels=[0, 0]).is_anomalous
    assert not make_matched([1, 2]).is_anomalous


def test_matched_trajectory_validates_labels():
    with pytest.raises(TrajectoryError):
        make_matched([1, 2, 3], labels=[0, 1])
    with pytest.raises(TrajectoryError):
        make_matched([1, 2, 3], labels=[0, 2, 0])


def test_matched_trajectory_requires_segments():
    with pytest.raises(EmptyTrajectoryError):
        MatchedTrajectory(trajectory_id=1, segments=[])


def test_subtrajectory_slicing():
    trajectory = make_matched([10, 11, 12, 13, 14])
    sub = trajectory.subtrajectory(1, 3)
    assert sub.segments == [11, 12, 13]
    assert sub.span == (1, 3)
    assert len(sub) == 3
    assert sub.segment_set() == frozenset({11, 12, 13})


def test_subtrajectory_bounds_checked():
    trajectory = make_matched([10, 11, 12])
    with pytest.raises(TrajectoryError):
        trajectory.subtrajectory(2, 5)
    with pytest.raises(TrajectoryError):
        Subtrajectory(1, 2, 1, [])


def test_with_labels_copies():
    trajectory = make_matched([1, 2, 3])
    labeled = trajectory.with_labels([0, 1, 0])
    assert labeled.labels == [0, 1, 0]
    assert trajectory.labels is None


# -------------------------------------------------------------- operations
def test_transitions_of_pads_source():
    assert transitions_of([7, 8, 9]) == [(SOURCE_PAD, 7), (7, 8), (8, 9)]


def test_transitions_of_rejects_empty():
    with pytest.raises(TrajectoryError):
        transitions_of([])


def test_subtrajectory_spans():
    assert subtrajectory_spans([0, 1, 1, 0, 1]) == [(1, 2), (4, 4)]
    assert subtrajectory_spans([1, 1, 1]) == [(0, 2)]
    assert subtrajectory_spans([0, 0]) == []
    assert subtrajectory_spans([]) == []


def test_subtrajectory_spans_rejects_bad_labels():
    with pytest.raises(TrajectoryError):
        subtrajectory_spans([0, 2, 0])


def test_split_by_labels():
    trajectory = make_matched([4, 5, 6, 7, 8])
    subs = split_by_labels(trajectory, [0, 1, 1, 0, 0])
    assert len(subs) == 1
    assert subs[0].segments == [5, 6]


def test_split_by_labels_requires_alignment():
    with pytest.raises(TrajectoryError):
        split_by_labels(make_matched([1, 2]), [0, 1, 1])


def test_labels_from_spans_round_trip():
    labels = [0, 1, 1, 0, 0, 1]
    spans = subtrajectory_spans(labels)
    assert labels_from_spans(len(labels), spans) == labels


def test_labels_from_spans_rejects_out_of_range():
    with pytest.raises(TrajectoryError):
        labels_from_spans(3, [(1, 5)])


def test_anomalous_fraction():
    assert anomalous_fraction([0, 1, 1, 0]) == pytest.approx(0.5)
    assert anomalous_fraction([]) == 0.0
