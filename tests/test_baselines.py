"""Tests of the baseline detectors and the threshold-adaptation protocol."""

import numpy as np
import pytest

from repro.baselines import (
    CTSSScorer,
    DBTODScorer,
    GMVSAEScorer,
    IBOATDetector,
    SAEScorer,
    SDVSAEScorer,
    ThresholdedDetector,
    TransitionFrequencyScorer,
    VSAEScorer,
    tune_threshold,
)
from repro.baselines.adapt import labels_from_scores
from repro.baselines.iboat import _contains_contiguous
from repro.baselines.vsae import AutoencoderConfig, SequenceAutoencoder, train_autoencoder
from repro.eval import evaluate_detector
from repro.exceptions import EvaluationError, NotFittedError


@pytest.fixture(scope="module")
def autoencoder(pipeline, dataset_split):
    train, _, _ = dataset_split
    return train_autoencoder(
        pipeline.vocabulary, train,
        AutoencoderConfig(embedding_dim=12, hidden_dim=12, latent_dim=6,
                          epochs=1, n_components=3, seed=1),
        max_trajectories=80,
    )


# --------------------------------------------------------------- adaptation
def test_labels_from_scores_protects_endpoints():
    labels = labels_from_scores([9.0, 0.1, 9.0, 9.0], threshold=1.0)
    assert labels == [0, 0, 1, 0]


def test_tune_threshold_separates_classes(pipeline, dataset_split):
    _, development, _ = dataset_split
    scorer = TransitionFrequencyScorer(pipeline)
    threshold = tune_threshold(scorer, development)
    assert 0.0 <= threshold <= 1.0


def test_tune_threshold_requires_labels(pipeline, dataset_split):
    train, development, _ = dataset_split
    scorer = TransitionFrequencyScorer(pipeline)
    with pytest.raises(EvaluationError):
        tune_threshold(scorer, [])
    unlabeled = development[0].with_labels([0] * len(development[0]))
    unlabeled.labels = None
    with pytest.raises(EvaluationError):
        tune_threshold(scorer, [unlabeled])


def test_thresholded_detector_requires_tuning(pipeline, dataset_split):
    _, _, test = dataset_split
    detector = ThresholdedDetector(TransitionFrequencyScorer(pipeline))
    with pytest.raises(EvaluationError):
        detector.detect(test[0])


def test_thresholded_detector_detects(pipeline, dataset_split):
    _, development, test = dataset_split
    detector = ThresholdedDetector(TransitionFrequencyScorer(pipeline)).tune(development)
    result = detector.detect(test[0])
    assert len(result.labels) == len(test[0])
    assert len(result.scores) == len(test[0])
    assert result.spans == result.spans  # spans property is stable


# -------------------------------------------------------------------- IBOAT
def test_contains_contiguous():
    assert _contains_contiguous([1, 2, 3, 4], [2, 3])
    assert not _contains_contiguous([1, 2, 3, 4], [2, 4])
    assert _contains_contiguous([1, 2], [])
    assert not _contains_contiguous([1], [1, 2])


def test_iboat_labels_detours(pipeline, dataset_split):
    _, _, test = dataset_split
    detector = IBOATDetector(pipeline, support_threshold=0.2)
    anomalous = next(t for t in test if t.is_anomalous)
    result = detector.detect(anomalous)
    assert len(result.labels) == len(anomalous)
    assert result.labels[0] == 0 and result.labels[-1] == 0
    # The detour segments get low support, so at least part of it is flagged.
    flagged = {i for i, label in enumerate(result.labels) if label == 1}
    true_positions = {i for i, label in enumerate(anomalous.labels) if label == 1}
    assert flagged & true_positions


def test_iboat_support_and_validation(pipeline):
    detector = IBOATDetector(pipeline)
    assert detector.support([1, 2], [[1, 2, 3], [4, 5]]) == pytest.approx(0.5)
    assert detector.support([1], []) == 1.0
    with pytest.raises(EvaluationError):
        IBOATDetector(pipeline, support_threshold=1.5)


# -------------------------------------------------------------------- DBTOD
def test_dbtod_scores_rare_transitions_higher(dataset, dataset_split):
    train, _, test = dataset_split
    scorer = DBTODScorer(dataset.network, train)
    anomalous = next(t for t in test if t.is_anomalous)
    scores = scorer.scores(anomalous)
    assert len(scores) == len(anomalous)
    detour_scores = [s for s, label in zip(scores, anomalous.labels) if label == 1]
    normal_scores = [s for s, label in zip(scores[1:], anomalous.labels[1:])
                     if label == 0]
    assert np.mean(detour_scores) > np.mean(normal_scores)


def test_dbtod_validation(dataset):
    with pytest.raises(EvaluationError):
        DBTODScorer(dataset.network, [])


# --------------------------------------------------------------------- CTSS
def test_ctss_scores_peak_on_detours(pipeline, dataset_split):
    _, _, test = dataset_split
    scorer = CTSSScorer(pipeline)
    anomalous = next(t for t in test if t.is_anomalous)
    scores = scorer.scores(anomalous)
    assert len(scores) == len(anomalous)
    first_detour = anomalous.labels.index(1)
    assert max(scores[first_detour:]) > max(scores[:first_detour] or [0.0])


def test_ctss_normal_route_scores_near_zero(pipeline, dataset_split):
    _, _, test = dataset_split
    scorer = CTSSScorer(pipeline)
    normal = next(t for t in test if not t.is_anomalous)
    assert max(scorer.scores(normal)) < 500.0


# ----------------------------------------------------------- autoencoders
def test_autoencoder_training_reduces_nll(pipeline, dataset_split):
    train, _, _ = dataset_split
    config = AutoencoderConfig(embedding_dim=10, hidden_dim=10, latent_dim=5,
                               epochs=1, seed=3)
    model = SequenceAutoencoder(len(pipeline.vocabulary), config)
    tokens = pipeline.vocabulary.tokens(train[0].segments)
    first = model.train_step(tokens)
    for _ in range(25):
        last = model.train_step(tokens)
    assert last < first


def test_autoencoder_mixture_requires_training(pipeline):
    model = SequenceAutoencoder(len(pipeline.vocabulary), AutoencoderConfig())
    with pytest.raises(NotFittedError):
        model.fit_mixture()
    with pytest.raises(NotFittedError):
        model.mixture_means


def test_autoencoder_scorers_shapes(autoencoder, pipeline, dataset_split):
    _, _, test = dataset_split
    trajectory = test[0]
    for scorer_class in (SAEScorer, VSAEScorer, GMVSAEScorer, SDVSAEScorer):
        scorer = scorer_class(autoencoder, pipeline.vocabulary)
        scores = scorer.scores(trajectory)
        assert len(scores) == len(trajectory)
        assert all(np.isfinite(s) for s in scores)


def test_gmvsae_never_worse_than_sdvsae(autoencoder, pipeline, dataset_split):
    """GM-VSAE decodes from every component, so its best NLL is <= SD-VSAE's."""
    _, _, test = dataset_split
    gm = GMVSAEScorer(autoencoder, pipeline.vocabulary)
    sd = SDVSAEScorer(autoencoder, pipeline.vocabulary)
    for trajectory in test[:5]:
        gm_scores = np.asarray(gm.scores(trajectory))
        sd_scores = np.asarray(sd.scores(trajectory))
        assert np.all(gm_scores <= sd_scores + 1e-9)


# -------------------------------------------------------- end-to-end sanity
def test_every_baseline_evaluates(pipeline, dataset, dataset_split, autoencoder):
    train, development, test = dataset_split
    detectors = {
        "IBOAT": IBOATDetector(pipeline),
        "DBTOD": ThresholdedDetector(DBTODScorer(dataset.network, train)).tune(development),
        "CTSS": ThresholdedDetector(CTSSScorer(pipeline)).tune(development),
        "SAE": ThresholdedDetector(SAEScorer(autoencoder, pipeline.vocabulary)).tune(development),
    }
    for name, detector in detectors.items():
        run = evaluate_detector(detector, test[:30], name=name)
        assert 0.0 <= run.overall.f1 <= 1.0
