"""Live HTTP scrape round trips and the /healthz and /ready probes.

The soak harness's whole verdict rides on ``render_prometheus`` →
``MetricsServer`` → HTTP fetch → ``parse_prometheus`` being lossless, so
that loop is pinned here — including with awkward label values and under
concurrent merges from shard registries while clients scrape.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import __version__
from repro.obs import (HealthReport, MetricsRegistry, MetricsServer,
                       RuleResult, add_process_metrics, parse_prometheus,
                       process_rss_bytes, render_prometheus)
from repro.obs.timeseries import fetch_metrics


def _fetch(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


def _rich_registry():
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", {"code": "200"},
                     help="requests").inc(41)
    registry.counter("repro_requests_total", {"code": "500"}).inc(1)
    registry.gauge("repro_depth", {"shard": "0"}).set(3.5)
    registry.gauge("repro_info",
                   {"version": "1.0", "note": 'quoted "x" and \\slash\\'}
                   ).set(1)
    histogram = registry.histogram("repro_latency_seconds",
                                   {"stage": "tick"},
                                   buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        histogram.observe(value)
    return registry


class TestRoundTrip:
    def test_http_fetch_equals_local_render(self):
        registry = _rich_registry()
        text = render_prometheus(registry)
        with MetricsServer(lambda: render_prometheus(registry)) as server:
            fetched = fetch_metrics(server.url)
        assert parse_prometheus(fetched) == parse_prometheus(text)
        # Including the escaped label value, exactly.
        samples = parse_prometheus(fetched)
        key = ("repro_info", (("note", 'quoted "x" and \\slash\\'),
                              ("version", "1.0")))
        assert samples[key] == 1

    def test_histogram_series_survive_the_wire(self):
        registry = _rich_registry()
        with MetricsServer(lambda: render_prometheus(registry)) as server:
            samples = parse_prometheus(fetch_metrics(server.url))
        buckets = {labels: value for (name, labels), value in samples.items()
                   if name == "repro_latency_seconds_bucket"}
        assert buckets[(("le", "0.1"), ("stage", "tick"))] == 1
        assert buckets[(("le", "1"), ("stage", "tick"))] == 2
        assert buckets[(("le", "+Inf"), ("stage", "tick"))] == 3
        assert samples[("repro_latency_seconds_count",
                        (("stage", "tick"),))] == 3

    def test_concurrent_shard_merges_and_scrapes(self):
        """Fleet registries merging while clients scrape: every response
        parses, and the label-summed counter only moves forward."""
        fleet = MetricsRegistry()
        # Pre-create the series so merges only add (snapshot render can
        # interleave with merges; sample sets stay stable).
        for shard in range(4):
            fleet.counter("repro_points_total", {"shard": str(shard)})

        def render():
            return render_prometheus(fleet)

        errors = []
        totals = []
        stop = threading.Event()

        def merger(shard):
            while not stop.is_set():
                delta = MetricsRegistry()
                delta.counter("repro_points_total",
                              {"shard": str(shard)}).inc(7)
                fleet.merge(delta)

        with MetricsServer(render) as server:
            def scraper():
                try:
                    for _ in range(25):
                        samples = parse_prometheus(fetch_metrics(server.url))
                        totals.append(sum(
                            value for (name, _), value in samples.items()
                            if name == "repro_points_total"))
                except Exception as error:  # noqa: BLE001 - reported below
                    errors.append(error)

            mergers = [threading.Thread(target=merger, args=(shard,))
                       for shard in range(4)]
            scrapers = [threading.Thread(target=scraper) for _ in range(3)]
            for thread in mergers + scrapers:
                thread.start()
            for thread in scrapers:
                thread.join()
            stop.set()
            for thread in mergers:
                thread.join()
        assert not errors
        assert totals and all(total >= 0 for total in totals)
        assert sorted(totals) != [] and max(totals) > 0

    def test_render_cache_serves_owner_snapshots(self):
        from repro.obs import RenderCache
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        cache = RenderCache(lambda: render_prometheus(registry))
        # Never renders on a reader's thread: empty until the owner
        # refreshes (a reader-side render would race the owner for the
        # shard command queues).
        assert cache() == ""
        cache.refresh()
        first = cache()
        counter.inc(5)
        assert cache() == first  # still the cached snapshot
        cache.refresh()
        assert parse_prometheus(cache())[("c_total", ())] == 5


class TestProbes:
    def test_healthz_without_callable_is_liveness(self):
        registry = MetricsRegistry()
        with MetricsServer(lambda: render_prometheus(registry)) as server:
            status, body = _fetch(server.url.replace("/metrics", "/healthz"))
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "pass"
        assert payload["version"] == __version__

    def test_healthz_reports_the_verdict(self):
        verdict = {"passed": True}

        def health():
            return HealthReport([RuleResult("zero gaps", verdict["passed"],
                                            "seen")])

        registry = MetricsRegistry()
        with MetricsServer(lambda: render_prometheus(registry),
                           health=health) as server:
            probe = server.url.replace("/metrics", "/healthz")
            status, body = _fetch(probe)
            assert status == 200
            assert json.loads(body)["checks"][0]["rule"] == "zero gaps"
            verdict["passed"] = False
            with pytest.raises(urllib.error.HTTPError) as failure:
                _fetch(probe)
            assert failure.value.code == 503
            payload = json.loads(failure.value.read().decode("utf-8"))
            assert payload["status"] == "fail"
            assert payload["version"] == __version__

    def test_ready_follows_render_health(self):
        state = {"ok": True}

        def render():
            if not state["ok"]:
                raise RuntimeError("backend gone")
            return "up 1\n"

        with MetricsServer(render) as server:
            probe = server.url.replace("/metrics", "/ready")
            status, body = _fetch(probe)
            assert status == 200 and json.loads(body)["ready"] is True
            state["ok"] = False
            with pytest.raises(urllib.error.HTTPError) as failure:
                _fetch(probe)
            assert failure.value.code == 503

    def test_ready_callable_wins(self):
        with MetricsServer(lambda: "up 1\n",
                           ready=lambda: False) as server:
            with pytest.raises(urllib.error.HTTPError) as failure:
                _fetch(server.url.replace("/metrics", "/ready"))
            assert failure.value.code == 503

    def test_unknown_path_is_404(self):
        with MetricsServer(lambda: "up 1\n") as server:
            with pytest.raises(urllib.error.HTTPError) as failure:
                _fetch(server.url.replace("/metrics", "/nope"))
            assert failure.value.code == 404


class TestProcessMetrics:
    def test_rss_is_positive_here(self):
        assert process_rss_bytes() > 0

    def test_add_process_metrics_stamps_rss_and_version(self):
        registry = add_process_metrics(MetricsRegistry())
        samples = parse_prometheus(render_prometheus(registry))
        assert samples[("repro_process_rss_bytes", ())] > 0
        assert samples[("repro_info", (("version", __version__),))] == 1

    def test_service_scrape_carries_process_metrics_and_gaps(
            self, trained_model):
        """The serving surfaces expose the soak SLOs' inputs."""
        with trained_model.detection_service(num_shards=1,
                                             backend="inprocess") as service:
            samples = parse_prometheus(service.metrics_text())
        assert samples[("repro_bus_gaps_total", ())] == 0
        assert samples[("repro_process_rss_bytes", ())] > 0
        assert ("repro_info", (("version", __version__),)) in samples
