"""Tests of the synthetic dataset generator (the DiDi-data substitute)."""

import numpy as np
import pytest

from repro.config import DataGenConfig, RoadNetworkConfig
from repro.datagen import (
    DriftSchedule,
    TrafficModel,
    TrajectoryGenerator,
    chengdu_like,
    inject_detour,
    sample_gps_trace,
    sample_sd_pairs,
    tiny_dataset,
    xian_like,
)
from repro.datagen.routes import RoutePlanner
from repro.exceptions import DataGenerationError
from repro.roadnet import build_grid_city, dijkstra_route


# ----------------------------------------------------------------- traffic
def test_traffic_model_rush_hour_slower():
    traffic = TrafficModel()
    rush = traffic.effective_speed(15.0, 8 * 3600.0)
    night = traffic.effective_speed(15.0, 3 * 3600.0)
    assert rush < night


def test_traffic_model_validates_profile():
    with pytest.raises(DataGenerationError):
        TrafficModel(hourly_speed_factor=[1.0] * 10)


def test_drift_schedule_parts_and_rotation():
    schedule = DriftSchedule(n_parts=4, rotation_per_part=1)
    assert schedule.part_of(0.0) == 0
    assert schedule.part_of(23 * 3600.0) == 3
    assert schedule.part_bounds_s(1) == (6 * 3600.0, 12 * 3600.0)
    weights = [0.55, 0.45]
    assert schedule.route_weights(weights, 0) == [0.55, 0.45]
    assert schedule.route_weights(weights, 1) == [0.45, 0.55]
    assert schedule.route_weights(weights, 2) == [0.55, 0.45]
    assert schedule.route_weights(weights, 1, pair_drifts=False) == [0.55, 0.45]


def test_drift_schedule_validation():
    with pytest.raises(DataGenerationError):
        DriftSchedule(n_parts=0)
    with pytest.raises(DataGenerationError):
        DriftSchedule(drifting_pair_fraction=2.0)


# ----------------------------------------------------------------- SD pairs
def test_sample_sd_pairs_respects_length_bounds(grid_network, rng):
    pairs = sample_sd_pairs(grid_network, 5, rng, min_route_length=5,
                            max_route_length=20)
    assert len(pairs) == 5
    for source, destination in pairs:
        route = dijkstra_route(grid_network, source, destination)
        assert 5 <= len(route) <= 20


def test_sample_sd_pairs_unsatisfiable(grid_network, rng):
    with pytest.raises(DataGenerationError):
        sample_sd_pairs(grid_network, 3, rng, min_route_length=500,
                        max_route_length=600, max_attempts_per_pair=5)


# ------------------------------------------------------------------- routes
def test_route_planner_weight_profiles(grid_network, rng):
    planner = RoutePlanner(grid_network, rng)
    pairs = sample_sd_pairs(grid_network, 3, rng, min_route_length=6,
                            max_route_length=25)
    for source, destination in pairs:
        planned = planner.plan_pair(source, destination, n_routes_range=(2, 2))
        assert len(planned.normal_routes) <= 2
        assert sum(planned.base_weights) == pytest.approx(1.0)
        for route in planned.normal_routes:
            assert route[0] == source and route[-1] == destination


def test_inject_detour_labels_only_new_segments(grid_network, rng):
    planner = RoutePlanner(grid_network, rng)
    source, destination = sample_sd_pairs(grid_network, 1, rng,
                                          min_route_length=10,
                                          max_route_length=30)[0]
    base = planner.plan_pair(source, destination).normal_routes[0]
    result = inject_detour(grid_network, base, rng, detour_length_range=(2, 8))
    assert result is not None
    detoured, labels = result
    assert len(detoured) == len(labels)
    assert grid_network.is_route_connected(detoured)
    original = set(base)
    for segment, label in zip(detoured, labels):
        if label == 1:
            assert segment not in original
    assert labels[0] == 0 and labels[-1] == 0
    assert sum(labels) >= 2


def test_inject_detour_too_short_returns_none(grid_network, rng):
    assert inject_detour(grid_network, [0, 1, 2], rng) is None


# ---------------------------------------------------------------- generator
def test_generator_dataset_consistency():
    dataset = tiny_dataset(seed=11)
    assert len(dataset) == len(dataset.trajectories)
    for trajectory in dataset.trajectories:
        assert trajectory.labels is not None
        assert len(trajectory.labels) == len(trajectory)
        assert dataset.network.is_route_connected(trajectory.segments)
        # Source and destination are never anomalous.
        assert trajectory.labels[0] == 0
        assert trajectory.labels[-1] == 0


def test_generator_anomaly_ratio_in_expected_range():
    dataset = tiny_dataset(seed=11)
    stats = dataset.statistics()
    assert 0.02 < stats.anomalous_ratio < 0.35
    assert stats.num_anomalous_routes <= stats.num_labeled_routes


def test_generator_is_deterministic():
    a = tiny_dataset(seed=21)
    b = tiny_dataset(seed=21)
    assert [t.route_key() for t in a.trajectories] == [t.route_key() for t in b.trajectories]


def test_sample_gps_trace_covers_route(grid_network, rng):
    route = dijkstra_route(grid_network, grid_network.segment_ids()[0],
                           grid_network.segment_ids()[50])
    raw = sample_gps_trace(grid_network, route, 0.0, rng)
    assert len(raw) >= len(route) // 2
    assert raw.points[-1].t > raw.points[0].t


def test_presets_shapes():
    chengdu = chengdu_like(scale=0.15)
    xian = xian_like(scale=0.15)
    assert chengdu.statistics().num_trajectories > 0
    assert xian.statistics().num_trajectories > 0
    assert xian.statistics().anomalous_ratio > chengdu.statistics().anomalous_ratio


# ------------------------------------------------------------------ dataset
def test_train_test_split_partition():
    dataset = tiny_dataset(seed=11)
    train, test = dataset.train_test_split(train_size=100, seed=0)
    assert len(train) == 100
    assert len(train) + len(test) == len(dataset)
    train_ids = {t.trajectory_id for t in train}
    assert all(t.trajectory_id not in train_ids for t in test)


def test_train_test_split_validation():
    dataset = tiny_dataset(seed=11)
    with pytest.raises(DataGenerationError):
        dataset.train_test_split(train_size=0)
    with pytest.raises(DataGenerationError):
        dataset.train_test_split(train_size=len(dataset))


def test_by_length_group_partition():
    dataset = tiny_dataset(seed=11)
    groups = dataset.by_length_group()
    assert sum(len(g) for g in groups.values()) == len(dataset)


def test_filter_by_part():
    dataset = tiny_dataset(seed=11)
    part0 = dataset.filter_by_part(0, 2)
    part1 = dataset.filter_by_part(1, 2)
    assert len(part0) + len(part1) == len(dataset)
    with pytest.raises(DataGenerationError):
        dataset.filter_by_part(5, 2)
