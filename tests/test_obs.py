"""Tests of the observability plane (:mod:`repro.obs`).

Three layers:

* **Primitives** — counters/gauges/histograms merge exactly (hypothesis
  pins merge associativity and commutativity, the property the process
  backend's ship-registries-home design rests on), the seeded reservoir
  matches inline Algorithm-R, and everything survives a pickle round trip.
* **Exposition** — ``render_prometheus`` golden output, the
  ``parse_prometheus`` inverse, and the stdlib scrape endpoint.
* **Pipeline wiring** — a traced gateway→service→bus run covers all seven
  ``STAGES`` on both backends and both matcher placements, spans keep
  pipeline order per trace, rate 0 records nothing and allocates nothing
  on the hot path, and the text exposition always agrees with the
  ``ServiceMetrics``/``GatewayStats`` dashboards.
"""

from __future__ import annotations

import json
import pickle
import random
import tracemalloc
import urllib.request
from collections import defaultdict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GatewayConfig, ObsConfig
from repro.datagen import sample_gps_trace
from repro.exceptions import ConfigurationError, ServiceError
from repro.ingest import GpsGateway, serve_raw_fleet
from repro.mapmatching import HMMMapMatcher
from repro.obs import (Counter, Gauge, Histogram, MetricsRegistry,
                       MetricsServer, Reservoir, STAGE_LATENCY_METRIC,
                       STAGES, TraceContext, Tracer, default_latency_buckets,
                       parse_prometheus, render_prometheus, timestamp,
                       write_spans_jsonl)

BUCKETS = (0.001, 0.01, 0.1, 1.0)
samples_strategy = st.lists(
    st.floats(min_value=1e-6, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    max_size=50)


def histogram_of(values, name="h"):
    histogram = Histogram(name, buckets=BUCKETS)
    for value in values:
        histogram.observe(value)
    return histogram


def assert_histograms_equal(left, right):
    assert left.counts == right.counts
    assert left.count == right.count
    assert left.total == pytest.approx(right.total)
    assert left.minimum == right.minimum
    assert left.maximum == right.maximum


# ------------------------------------------------------------- primitives
def test_counter_merges_by_addition_and_rejects_decrements():
    a = Counter("c")
    a.inc()
    a.inc(2.5)
    b = Counter("c")
    b.inc(4)
    a.merge(b)
    assert a.value == 7.5
    with pytest.raises(ValueError):
        a.inc(-1)


def test_gauge_merge_takes_the_incoming_value():
    facade, shard = Gauge("g"), Gauge("g")
    facade.set(3)
    shard.set(11)
    facade.merge(shard)
    assert facade.value == 11.0


def test_histogram_bucketing_and_exact_side_channels():
    histogram = histogram_of([0.001, 0.0005, 0.05, 0.5, 99.0])
    # Upper bounds are inclusive (bisect_left): 0.001 lands in its bucket.
    assert histogram.counts == [2, 0, 1, 1, 1]
    assert histogram.count == 5
    assert histogram.total == pytest.approx(0.001 + 0.0005 + 0.05 + 0.5 + 99)
    assert histogram.minimum == 0.0005
    assert histogram.maximum == 99.0
    assert histogram.mean == pytest.approx(histogram.total / 5)


def test_histogram_rejects_unsorted_buckets_and_foreign_merges():
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, 0.5))
    with pytest.raises(ValueError):
        Histogram("h", buckets=(1.0, 1.0, 2.0))
    left = Histogram("h", buckets=BUCKETS)
    right = Histogram("h", buckets=BUCKETS[:-1])
    with pytest.raises(ValueError):
        left.merge(right)


def test_empty_histogram_reports_zeros():
    histogram = Histogram("h", buckets=BUCKETS)
    assert histogram.count == 0
    assert histogram.mean == 0.0
    assert histogram.minimum == 0.0
    assert histogram.maximum == 0.0
    assert histogram.quantile(0.99) == 0.0


@given(samples_strategy, samples_strategy)
def test_histogram_merge_is_commutative(left_values, right_values):
    ab = histogram_of(left_values)
    ab.merge(histogram_of(right_values))
    ba = histogram_of(right_values)
    ba.merge(histogram_of(left_values))
    assert_histograms_equal(ab, ba)


@given(samples_strategy, samples_strategy, samples_strategy)
def test_histogram_merge_is_associative(a_values, b_values, c_values):
    left = histogram_of(a_values)
    left.merge(histogram_of(b_values))
    left.merge(histogram_of(c_values))
    bc = histogram_of(b_values)
    bc.merge(histogram_of(c_values))
    right = histogram_of(a_values)
    right.merge(bc)
    assert_histograms_equal(left, right)


@given(samples_strategy)
def test_histogram_merge_equals_single_stream(values):
    """Sharded observation merged home == one histogram fed everything."""
    merged = Histogram("h", buckets=BUCKETS)
    merged.merge(histogram_of(values[0::2]))
    merged.merge(histogram_of(values[1::2]))
    assert_histograms_equal(merged, histogram_of(values))


@given(samples_strategy.filter(lambda values: len(values) > 0))
def test_histogram_quantiles_are_ordered_and_clamped(values):
    histogram = histogram_of(values)
    quantiles = [histogram.quantile(q) for q in (0.0, 0.5, 0.95, 0.99, 1.0)]
    assert quantiles == sorted(quantiles)
    for value in quantiles:
        assert histogram.minimum <= value <= histogram.maximum
    with pytest.raises(ValueError):
        histogram.quantile(1.5)


def test_default_latency_buckets_are_log_spaced_and_validated():
    buckets = default_latency_buckets()
    assert len(buckets) == 26
    assert buckets[0] == pytest.approx(1e-6)
    for lower, upper in zip(buckets, buckets[1:]):
        assert upper == pytest.approx(lower * 2.0)
    with pytest.raises(ValueError):
        default_latency_buckets(start=0.0)
    with pytest.raises(ValueError):
        default_latency_buckets(factor=1.0)


def test_registry_get_or_create_identity_and_kind_conflicts():
    registry = MetricsRegistry()
    counter = registry.counter("ingests", help="Ingest events")
    assert registry.counter("ingests") is counter
    assert registry.get("ingests") is counter
    assert registry.help_text("ingests") == "Ingest events"
    labeled = registry.counter("ingests", {"shard": "0"})
    assert labeled is not counter
    with pytest.raises(TypeError):
        registry.gauge("ingests")
    with pytest.raises(TypeError):
        registry.histogram("ingests")
    assert len(registry) == 2


def test_registry_merge_semantics_and_pickle_round_trip():
    shard = MetricsRegistry()
    shard.counter("points", {"shard": "1"}, help="points").inc(7)
    shard.gauge("depth", {"shard": "1"}).set(3)
    shard.histogram("latency", buckets=BUCKETS).observe(0.05)
    shipped = pickle.loads(pickle.dumps(shard))  # the worker reply hop

    facade = MetricsRegistry()
    facade.counter("points", {"shard": "1"}).inc(5)
    facade.gauge("depth", {"shard": "1"}).set(99)
    facade.histogram("latency", buckets=BUCKETS).observe(0.5)
    facade.merge(shipped)

    assert facade.counter("points", {"shard": "1"}).value == 12
    assert facade.gauge("depth", {"shard": "1"}).value == 3  # newer wins
    merged = facade.histogram("latency", buckets=BUCKETS)
    assert merged.count == 2
    assert merged.counts == [0, 0, 1, 1, 0]
    assert facade.help_text("points") == "points"


def test_reservoir_matches_inline_algorithm_r():
    """Same seed, same draws: the shared class is behavior-identical to the
    inline sampler the commit-lag reservoir used before the refactor."""
    values = list(range(1000))
    reservoir = Reservoir(cap=32, seed=0x1A6)
    reservoir.extend(values)

    rng = random.Random(0x1A6)
    inline, count = [], 0
    for value in values:
        count += 1
        if len(inline) < 32:
            inline.append(value)
            continue
        slot = rng.randrange(count)
        if slot < 32:
            inline[slot] = value

    assert reservoir.samples == inline
    assert reservoir.count == 1000
    assert len(reservoir) == 32
    with pytest.raises(ValueError):
        Reservoir(cap=0)


# ------------------------------------------------------------- exposition
def test_render_prometheus_golden():
    registry = MetricsRegistry()
    registry.counter("requests_total", help="Requests served").inc(3)
    registry.gauge("queue_depth", {"shard": "0"}).set(2)
    histogram = registry.histogram("latency_seconds", buckets=(0.1, 1.0),
                                   help="Request latency")
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    assert render_prometheus(registry) == (
        "# HELP latency_seconds Request latency\n"
        "# TYPE latency_seconds histogram\n"
        'latency_seconds_bucket{le="0.1"} 1\n'
        'latency_seconds_bucket{le="1"} 2\n'
        'latency_seconds_bucket{le="+Inf"} 3\n'
        "latency_seconds_sum 5.55\n"
        "latency_seconds_count 3\n"
        "# TYPE queue_depth gauge\n"
        'queue_depth{shard="0"} 2\n'
        "# HELP requests_total Requests served\n"
        "# TYPE requests_total counter\n"
        "requests_total 3\n")


def test_parse_prometheus_inverts_the_rendering():
    registry = MetricsRegistry()
    registry.counter("events_total", {"kind": 'quo"ted', "shard": "1"}).inc(4)
    registry.gauge("level").set(-2.5)
    histogram = registry.histogram("wait_seconds", buckets=BUCKETS)
    for value in (0.0005, 0.05, 2.0):
        histogram.observe(value)
    samples = parse_prometheus(render_prometheus(registry))
    assert samples[("events_total",
                    (("kind", 'quo"ted'), ("shard", "1")))] == 4
    assert samples[("level", ())] == -2.5
    assert samples[("wait_seconds_count", ())] == 3
    assert samples[("wait_seconds_sum", ())] == pytest.approx(2.0505)
    assert samples[("wait_seconds_bucket", (("le", "0.001"),))] == 1
    assert samples[("wait_seconds_bucket", (("le", "+Inf"),))] == 3


def test_parse_prometheus_rejects_garbage_and_duplicates():
    with pytest.raises(ValueError):
        parse_prometheus("justoneword\n")
    with pytest.raises(ValueError):
        parse_prometheus('bad{le=unquoted} 1\n')
    with pytest.raises(ValueError):
        parse_prometheus("dup 1\ndup 2\n")


def test_metrics_server_serves_scrapes():
    registry = MetricsRegistry()
    registry.counter("scrapes_total").inc(1)
    with MetricsServer(lambda: render_prometheus(registry)) as server:
        assert server.port > 0
        with urllib.request.urlopen(server.url, timeout=5) as response:
            assert response.status == 200
            assert "version=0.0.4" in response.headers["Content-Type"]
            body = response.read().decode("utf-8")
        assert parse_prometheus(body)[("scrapes_total", ())] == 1
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{server.port}/nope", timeout=5)


# ----------------------------------------------------------------- tracer
def test_tracer_validates_rate_and_samples_at_rate_one():
    with pytest.raises(ValueError):
        Tracer(sample_rate=1.5)
    tracer = Tracer(sample_rate=1.0)
    first = tracer.sample(1.0)
    second = tracer.sample(2.0)
    assert first == TraceContext(1, 1.0)
    assert second == TraceContext(2, 2.0)
    assert tracer.sampled == 2


def test_tracer_observe_records_histogram_and_spans():
    tracer = Tracer(sample_rate=1.0, site="facade")
    trace = tracer.sample(10.0)
    trace = tracer.observe("shard_queue", trace, 10.25)
    assert trace == TraceContext(1, 10.25)  # re-stamped for the next hop
    tracer.observe("engine_tick", trace, 10.75)
    histogram = tracer.registry.get(STAGE_LATENCY_METRIC,
                                    {"stage": "shard_queue"})
    assert histogram.count == 1
    assert histogram.total == pytest.approx(0.25)
    spans = tracer.take_spans()
    assert [(s.stage, s.site, s.duration_s) for s in spans] == [
        ("shard_queue", "facade", pytest.approx(0.25)),
        ("engine_tick", "facade", pytest.approx(0.5))]
    assert tracer.take_spans() == []  # drained exactly once


def test_tracer_span_retention_is_bounded():
    tracer = Tracer(sample_rate=1.0, max_spans=2)
    trace = tracer.sample(0.0)
    for hop in range(5):
        trace = tracer.observe("engine_tick", trace, float(hop + 1))
    assert len(tracer.spans) == 2
    assert tracer.span_overflow == 3
    silent = Tracer(sample_rate=1.0, keep_spans=False)
    silent.observe("finalize", silent.sample(0.0), 1.0)
    assert silent.take_spans() == []
    assert silent.registry.get(STAGE_LATENCY_METRIC,
                               {"stage": "finalize"}).count == 1


def test_rate_zero_sampling_is_allocation_free():
    """The zero-cost-when-off claim, measured: at rate 0 the hot path
    allocates nothing inside repro/obs/trace.py."""
    tracer = Tracer()  # default rate 0
    now = timestamp()
    assert tracer.sample(now) is None  # warm up any lazy caches
    tracemalloc.start()
    try:
        for _ in range(2000):
            tracer.sample(now)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    hot_path_bytes = sum(
        stat.size for stat in snapshot.statistics("filename")
        if stat.traceback[0].filename.endswith("trace.py"))
    assert hot_path_bytes == 0
    assert tracer.sampled == 0
    assert tracer.take_spans() == []


def test_write_spans_jsonl_sorts_one_trace_per_flame_line(tmp_path):
    tracer = Tracer(sample_rate=1.0, site="shard-0")
    second = tracer.sample(5.0)
    first = tracer.sample(1.0)
    tracer.observe("engine_tick", second, 6.0)
    first = tracer.observe("shard_queue", first, 2.0)
    tracer.observe("engine_tick", first, 3.0)
    path = tmp_path / "spans.jsonl"
    assert write_spans_jsonl(tracer.take_spans(), path) == 3
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert [(row["trace_id"], row["stage"]) for row in rows] == [
        (1, "engine_tick"), (2, "shard_queue"), (2, "engine_tick")]
    assert all(row["site"] == "shard-0" for row in rows)


def test_obs_config_validation():
    assert ObsConfig().validate().trace_sample_rate == 0.0
    with pytest.raises(ConfigurationError):
        ObsConfig(trace_sample_rate=2.0).validate()
    with pytest.raises(ConfigurationError):
        ObsConfig(queue_wait_cap=0).validate()


# -------------------------------------------------------- pipeline wiring
STAGE_ORDER = {stage: index for index, stage in enumerate(STAGES)}


def clean_raws(dataset, trajectories, seed=0):
    rng = np.random.default_rng(seed)
    return [sample_gps_trace(dataset.network, truth.segments,
                             truth.start_time_s, rng, gps_noise_m=1.0,
                             trajectory_id=truth.trajectory_id)
            for truth in trajectories]


def assert_stage_coverage(service, stages=STAGES):
    registry = service.obs_registry()
    for stage in stages:
        histogram = registry.get(STAGE_LATENCY_METRIC, {"stage": stage})
        assert histogram is not None and histogram.count > 0, \
            f"stage {stage!r} recorded no latency observations"
        assert histogram.minimum >= 0.0


def assert_spans_keep_pipeline_order(spans):
    by_trace = defaultdict(list)
    for span in spans:
        by_trace[span.trace_id].append(span)
    assert by_trace, "no spans recorded"
    for trace_spans in by_trace.values():
        trace_spans.sort(key=lambda span: span.start_t)
        indices = [STAGE_ORDER[span.stage] for span in trace_spans]
        assert indices == sorted(indices), trace_spans


def assert_exposition_agrees_with_dashboards(text, service, gateway=None):
    samples = parse_prometheus(text)  # raises on malformed output
    metrics = service.metrics()
    assert samples[("repro_service_accepted_ingests_total", ())] \
        == metrics.accepted_ingests
    assert samples[("repro_service_results_delivered_total", ())] \
        == metrics.results_delivered
    assert samples[("repro_service_model_version", ())] \
        == metrics.model_version
    for shard in metrics.shards:
        key = (("shard", str(shard.shard_id)),)
        assert samples[("repro_shard_points_processed_total", key)] \
            == shard.points_processed
        assert samples[("repro_shard_streams_finalized_total", key)] \
            == shard.streams_finalized
    for bus in metrics.bus:
        key = (("shard", str(bus.shard_id)),)
        assert samples[("repro_bus_published_total", key)] == bus.published
    if gateway is not None:
        stats = gateway.stats()
        assert samples[("repro_gateway_raw_points_total", ())] \
            == stats.raw_points
        assert samples[("repro_gateway_matched_points_total", ())] \
            == stats.matched_points
        assert samples[("repro_gateway_sessions_total",
                        (("event", "closed"),))] == stats.sessions_closed
        assert samples[("repro_gateway_dropped_points_total",
                        (("reason", "late"),))] == stats.late_dropped


@pytest.mark.fleet
@pytest.mark.parametrize("backend", ["inprocess", "process"])
def test_traced_gateway_run_covers_all_seven_stages(trained_model, dataset,
                                                    dataset_split, backend):
    """Acceptance: at sample rate 1.0 a gateway→service→bus run lands
    observations in every stage histogram, on both backends, and the
    exposition agrees with the format() dashboards."""
    _, _, test = dataset_split
    raws = clean_raws(dataset, test[:6], seed=29)
    matcher = HMMMapMatcher(dataset.network)
    with trained_model.detection_service(
            num_shards=2, backend=backend,
            obs=ObsConfig(trace_sample_rate=1.0)) as service:
        gateway = GpsGateway(service, matcher,
                             GatewayConfig(async_sessions=True))
        outputs = serve_raw_fleet(gateway, raws, concurrency=4)
        assert sum(len(sessions) for sessions in outputs) == len(raws)

        assert_stage_coverage(service)
        spans = service.drain_spans()
        assert {span.stage for span in spans} == set(STAGES)
        assert_spans_keep_pipeline_order(spans)
        assert service.drain_spans() == []  # exactly-once drain

        for stage in STAGES:
            report = service.stage_latency(stage)
            assert report.count > 0
            assert 0.0 <= report.p50 <= report.p95 <= report.p99
            assert report.unit == "s"
            assert "latency" in report.format()
        wait = service.queue_wait_latency()
        assert wait.count > 0
        assert wait.as_dict()["count"] == wait.count

        assert_exposition_agrees_with_dashboards(
            gateway.metrics_text(), service, gateway)
        with pytest.raises(ServiceError):
            service.stage_latency("no_such_stage")


@pytest.mark.fleet
def test_traced_shard_placement_covers_all_seven_stages(trained_model,
                                                        dataset,
                                                        dataset_split):
    """With matching colocated on the shards the same seven histograms
    fill — the trace rides the raw MatchPush instead of a segment."""
    _, development, _ = dataset_split
    raws = clean_raws(dataset, development[:6], seed=31)
    matcher = HMMMapMatcher(dataset.network)
    with trained_model.detection_service(
            num_shards=2, obs=ObsConfig(trace_sample_rate=1.0)) as service:
        gateway = GpsGateway(
            service, matcher,
            GatewayConfig(matcher_placement="shard", async_sessions=True))
        outputs = serve_raw_fleet(gateway, raws, concurrency=4)
        assert sum(len(sessions) for sessions in outputs) == len(raws)
        assert_stage_coverage(service)
        assert_exposition_agrees_with_dashboards(
            gateway.metrics_text(), service, gateway)


@pytest.mark.fleet
def test_rate_zero_service_records_no_traces(trained_model, dataset_split):
    """ObsConfig defaults (rate 0): queue-wait reservoir still fills, but
    no stage histogram and no span ever materialises."""
    _, _, test = dataset_split
    with trained_model.detection_service(num_shards=2,
                                         obs=ObsConfig()) as service:
        for index, truth in enumerate(test[:4]):
            for position, segment in enumerate(truth.segments):
                if position == 0:
                    service.ingest_blocking(index, segment,
                                            start_time_s=truth.start_time_s)
                else:
                    service.ingest_blocking(index, segment)
            service.finalize(index)
        assert service.tracer is not None
        assert service.tracer.sampled == 0
        registry = service.obs_registry()
        for stage in STAGES:
            assert registry.get(STAGE_LATENCY_METRIC, {"stage": stage}) \
                is None
        assert service.drain_spans() == []
        assert service.queue_wait_latency().count > 0


@pytest.mark.fleet
def test_metrics_text_works_without_obs_config(trained_model, dataset_split):
    """metrics_text() is a registry view of metrics() even on a service
    built with no observability config at all."""
    _, _, test = dataset_split
    with trained_model.detection_service(num_shards=1) as service:
        truth = test[0]
        for position, segment in enumerate(truth.segments):
            if position == 0:
                service.ingest_blocking(0, segment,
                                        start_time_s=truth.start_time_s)
            else:
                service.ingest_blocking(0, segment)
        service.finalize(0)
        assert service.tracer is None
        assert_exposition_agrees_with_dashboards(service.metrics_text(),
                                                 service)


@pytest.mark.fleet
def test_service_scrape_endpoint_and_span_export(trained_model, dataset,
                                                 dataset_split, tmp_path):
    """start_metrics_server serves a live parseable scrape; export_spans
    writes the drained spans as valid JSONL."""
    _, _, test = dataset_split
    raws = clean_raws(dataset, test[:3], seed=37)
    matcher = HMMMapMatcher(dataset.network)
    with trained_model.detection_service(
            num_shards=1, obs=ObsConfig(trace_sample_rate=1.0)) as service:
        gateway = GpsGateway(service, matcher,
                             GatewayConfig(async_sessions=True))
        serve_raw_fleet(gateway, raws, concurrency=2)
        server = service.start_metrics_server()
        with urllib.request.urlopen(server.url, timeout=5) as response:
            samples = parse_prometheus(response.read().decode("utf-8"))
        stage_counts = [value for (name, labels), value in samples.items()
                        if name == STAGE_LATENCY_METRIC + "_count"]
        assert stage_counts and all(count > 0 for count in stage_counts)

        path = tmp_path / "spans.jsonl"
        written = service.export_spans(path)
        assert written > 0
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == written
        assert {row["stage"] for row in rows} <= set(STAGES)
        keys = [(row["trace_id"], row["start_t"]) for row in rows]
        assert keys == sorted(keys)
    # The scrape server is closed with the service.
    with pytest.raises(OSError):
        urllib.request.urlopen(server.url, timeout=2)
