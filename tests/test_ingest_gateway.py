"""Differential and edge-case tests of the raw-GPS ingest gateway.

The acceptance bar: on clean (noise-free-ish, in-order, gap-free) fleets,
``GpsGateway -> DetectionService`` produces *label-identical* detections to
the offline pipeline ``HMMMapMatcher.match -> DetectionService`` — across
shard counts and both backends — because the online matcher commits exactly
the offline route and both sides run the same deferred SD-pair streams.
Around that, the messy-input scenarios the gateway exists for: out-of-order
fixes inside and beyond the reorder window, duplicated timestamps, fixes
nowhere near a road, and long time gaps splitting a trip into sessions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GatewayConfig
from repro.datagen import sample_gps_trace
from repro.exceptions import ConfigurationError, GatewayError, ServiceError
from repro.ingest import GpsGateway, serve_raw_fleet
from repro.mapmatching import HMMMapMatcher, OnlineMapMatcher
from repro.trajectory import GPSPoint, RawTrajectory


@pytest.fixture(scope="module")
def offline_matcher(dataset):
    return HMMMapMatcher(dataset.network)


def clean_raws(dataset, trajectories, seed=0, noise=1.0):
    """Raw GPS traces of ground-truth routes, mild noise, in order."""
    rng = np.random.default_rng(seed)
    return [sample_gps_trace(dataset.network, truth.segments,
                             truth.start_time_s, rng, gps_noise_m=noise,
                             trajectory_id=truth.trajectory_id)
            for truth in trajectories]


def offline_reference(model, matcher, raws, **service_kwargs):
    """The offline pipeline: whole-trajectory match -> deferred streams."""
    matches = [matcher.match(raw) for raw in raws]
    assert all(match.succeeded for match in matches)
    results = []
    with model.detection_service(**service_kwargs) as service:
        for index, match in enumerate(matches):
            matched = match.matched
            for position, segment in enumerate(matched.segments):
                if position == 0:
                    service.ingest_blocking(
                        index, segment, start_time_s=matched.start_time_s)
                else:
                    service.ingest_blocking(index, segment)
            results.append(service.finalize(index))
    return results


def run_gateway(model, matcher, raws, config=None, **service_kwargs):
    with model.detection_service(**service_kwargs) as service:
        gateway = GpsGateway(service, matcher, config)
        outputs = serve_raw_fleet(gateway, raws, concurrency=8)
        stats = gateway.stats()
    return outputs, stats


def assert_single_sessions_match(reference, outputs):
    for expected, sessions in zip(reference, outputs):
        assert len(sessions) == 1
        result = sessions[0]
        assert result.labels == expected.labels
        assert result.spans == expected.spans
        assert result.trajectory.segments == expected.trajectory.segments


# ------------------------------------------------------------- equivalence
@pytest.mark.fleet
@pytest.mark.parametrize("num_shards,backend", [(1, "inprocess"),
                                                (2, "inprocess"),
                                                (3, "inprocess"),
                                                (2, "process")])
def test_gateway_matches_offline_pipeline_on_clean_fleets(
        trained_model, dataset, dataset_split, offline_matcher,
        num_shards, backend):
    """Acceptance: gateway->service label-identical to offline-match->service
    on clean fleets, across shard counts and both backends."""
    _, development, test = dataset_split
    fleet = (list(test) + list(development))[:12]
    raws = clean_raws(dataset, fleet, seed=num_shards)
    reference = offline_reference(trained_model, offline_matcher, raws,
                                  num_shards=num_shards, backend=backend)
    outputs, stats = run_gateway(trained_model, offline_matcher, raws,
                                 num_shards=num_shards, backend=backend)
    assert_single_sessions_match(reference, outputs)
    assert stats.sessions_closed == len(fleet)
    assert stats.dropped_points == 0
    assert stats.sessions_broken == 0


@pytest.mark.fleet
def test_gateway_batched_and_per_point_ingest_agree(trained_model, dataset,
                                                    dataset_split,
                                                    offline_matcher):
    """ingest_batch=N and the per-point path deliver identical labels; the
    batched run actually exercises batched service commands."""
    _, _, test = dataset_split
    raws = clean_raws(dataset, test[:8], seed=11)
    per_point_results = None
    for batch in (1, 16):
        with trained_model.detection_service(num_shards=2) as service:
            gateway = GpsGateway(service, offline_matcher,
                                 GatewayConfig(ingest_batch=batch))
            outputs = serve_raw_fleet(gateway, raws, concurrency=4)
            metrics = gateway.metrics()
        labels = [[session.labels for session in sessions]
                  for sessions in outputs]
        if batch == 1:
            per_point_results = labels
            assert metrics.batched_ingests == 0
        else:
            assert labels == per_point_results
            assert metrics.batched_ingests > 0
            assert metrics.gateway is not None
            assert metrics.gateway.batched_flushes > 0
            assert "GpsGateway" in metrics.format()


# ------------------------------------------------------------ out of order
def test_out_of_order_within_window_is_repaired(trained_model, dataset,
                                                dataset_split,
                                                offline_matcher):
    """Swapping adjacent fixes (displacement 1 <= reorder_window) must give
    exactly the in-order results."""
    _, _, test = dataset_split
    raws = clean_raws(dataset, test[:4], seed=21)
    config = GatewayConfig(reorder_window=4, ingest_batch=8)
    reference, _ = run_gateway(trained_model, offline_matcher, raws,
                               config=config, num_shards=2)
    shuffled = []
    for raw in raws:
        points = list(raw.points)
        for i in range(0, len(points) - 1, 2):
            points[i], points[i + 1] = points[i + 1], points[i]
        shuffled.append(points)
    with trained_model.detection_service(num_shards=2) as service:
        gateway = GpsGateway(service, offline_matcher, config)
        outputs = []
        for vehicle, points in enumerate(shuffled):
            sessions = []
            for position, point in enumerate(points):
                sessions.extend(gateway.push_point(
                    vehicle, point,
                    start_time_s=raws[vehicle].start_time_s
                    if position == 0 else None))
            sessions.extend(gateway.end(vehicle))
            outputs.append([s.result for s in sessions])
        stats = gateway.stats()
    assert stats.late_dropped == 0 and stats.duplicates_dropped == 0
    for expected_sessions, got_sessions in zip(reference, outputs):
        assert [r.labels for r in expected_sessions] == \
            [r.labels for r in got_sessions]


def test_point_beyond_reorder_window_is_dropped(trained_model, dataset,
                                                dataset_split,
                                                offline_matcher):
    """A fix delayed past the reorder window is dropped (counted), and the
    results equal a run on the trace without that fix."""
    _, _, test = dataset_split
    raw = clean_raws(dataset, [max(test, key=len)], seed=22)[0]
    victim = len(raw.points) // 2
    without = RawTrajectory(raw.trajectory_id,
                            [p for i, p in enumerate(raw.points)
                             if i != victim],
                            start_time_s=raw.start_time_s)
    config = GatewayConfig(reorder_window=3, ingest_batch=8)
    reference, reference_stats = run_gateway(
        trained_model, offline_matcher, [without], config=config,
        num_shards=1)
    assert reference_stats.late_dropped == 0
    delayed = [p for i, p in enumerate(raw.points) if i != victim]
    delayed.append(raw.points[victim])  # arrives after the whole trip
    with trained_model.detection_service(num_shards=1) as service:
        gateway = GpsGateway(service, offline_matcher, config)
        sessions = []
        for position, point in enumerate(delayed):
            sessions.extend(gateway.push_point(
                0, point,
                start_time_s=raw.start_time_s if position == 0 else None))
        sessions.extend(gateway.end(0))
        stats = gateway.stats()
    assert stats.late_dropped == 1
    assert [r.labels for r in reference[0]] == \
        [s.result.labels for s in sessions]


def test_duplicate_timestamps_are_dropped(trained_model, dataset,
                                          dataset_split, offline_matcher):
    _, _, test = dataset_split
    raw = clean_raws(dataset, [test[0]], seed=23)[0]
    config = GatewayConfig(reorder_window=2, ingest_batch=8)
    reference, _ = run_gateway(trained_model, offline_matcher, [raw],
                               config=config, num_shards=1)
    with trained_model.detection_service(num_shards=1) as service:
        gateway = GpsGateway(service, offline_matcher, config)
        sessions = []
        for position, point in enumerate(raw.points):
            sessions.extend(gateway.push_point(
                0, point,
                start_time_s=raw.start_time_s if position == 0 else None))
            # Same timestamp, slightly different fix: still a duplicate.
            sessions.extend(gateway.push_point(
                0, GPSPoint(point.x + 1.0, point.y - 1.0, point.t)))
        sessions.extend(gateway.end(0))
        stats = gateway.stats()
    assert stats.duplicates_dropped == len(raw.points)
    assert [r.labels for r in reference[0]] == \
        [s.result.labels for s in sessions]


# --------------------------------------------------------------- sessions
def test_all_points_unmatchable_drops_the_session(trained_model, dataset,
                                                  dataset_split,
                                                  offline_matcher):
    _, _, test = dataset_split
    raw = clean_raws(dataset, [test[1]], seed=24)[0]
    nowhere = RawTrajectory(
        raw.trajectory_id,
        [GPSPoint(p.x + 1e7, p.y + 1e7, p.t) for p in raw.points],
        start_time_s=raw.start_time_s)
    with trained_model.detection_service(num_shards=1) as service:
        gateway = GpsGateway(service, offline_matcher,
                             GatewayConfig(reorder_window=2))
        outputs = serve_raw_fleet(gateway, [nowhere], concurrency=1)
        stats = gateway.stats()
        assert service.active_vehicles == []  # no stream was ever opened
    assert outputs == [[]]
    assert stats.unmatched_dropped == len(nowhere.points)
    assert stats.sessions_dropped == 1
    assert stats.sessions_closed == 0
    assert stats.segments_emitted == 0


def test_time_gap_splits_a_trip_into_sessions(trained_model, dataset,
                                              dataset_split,
                                              offline_matcher):
    """A long silence splits one vehicle's stream into two SD-pair sessions,
    each labeled like the offline pipeline on its own half."""
    _, _, test = dataset_split
    first, second = test[2], test[3]
    raw_first = clean_raws(dataset, [first], seed=25)[0]
    gap_s = 900.0
    shift = raw_first.points[-1].t + gap_s + 60.0
    raw_second_base = clean_raws(dataset, [second], seed=26)[0]
    raw_second = RawTrajectory(
        second.trajectory_id,
        [GPSPoint(p.x, p.y, p.t + shift) for p in raw_second_base.points],
        start_time_s=raw_first.start_time_s + shift)
    stitched = RawTrajectory(
        first.trajectory_id,
        list(raw_first.points) + list(raw_second.points),
        start_time_s=raw_first.start_time_s)

    reference = offline_reference(
        trained_model, offline_matcher,
        [raw_first,
         RawTrajectory(second.trajectory_id, raw_second_base.points,
                       start_time_s=raw_second.start_time_s)],
        num_shards=2)

    config = GatewayConfig(reorder_window=2, session_gap_s=300.0,
                           ingest_batch=8)
    outputs, stats = run_gateway(trained_model, offline_matcher, [stitched],
                                 config=config, num_shards=2)
    assert stats.gap_splits == 1
    assert stats.sessions_closed == 2
    assert len(outputs[0]) == 2
    for expected, got in zip(reference, outputs[0]):
        assert got.labels == expected.labels
        assert got.trajectory.segments == expected.trajectory.segments


# ------------------------------------------------------------- error paths
def test_gateway_validates_inputs(trained_model, dataset, offline_matcher):
    with trained_model.detection_service(num_shards=1) as service:
        with pytest.raises(GatewayError):
            GpsGateway(service, dataset.network)  # not a matcher
        gateway = GpsGateway(service, offline_matcher)
        with pytest.raises(GatewayError):
            gateway.end("ghost")
        with pytest.raises(GatewayError):
            serve_raw_fleet(gateway, [], concurrency=0)
        # An OnlineMapMatcher is accepted as-is (window preconfigured).
        online = OnlineMapMatcher(offline_matcher, max_pending=16)
        assert GpsGateway(service, online).matcher is online
    with pytest.raises(ConfigurationError):
        GatewayConfig(reorder_window=-1).validate()
    with pytest.raises(ConfigurationError):
        GatewayConfig(session_gap_s=0.0).validate()
    with pytest.raises(ConfigurationError):
        GatewayConfig(max_pending_points=1).validate()
    with pytest.raises(ConfigurationError):
        GatewayConfig(ingest_batch=0).validate()
    # Regression: an explicit 0.0 used to silently fall back to
    # session_gap_s (`or` treats 0.0 as unset); now it is rejected outright.
    with pytest.raises(ConfigurationError):
        GatewayConfig(session_timeout_s=0.0).validate()
    with pytest.raises(ConfigurationError):
        GatewayConfig(matcher_placement="cloud").validate()


def test_gateway_latency_report(trained_model, dataset, dataset_split,
                                offline_matcher):
    _, _, test = dataset_split
    raws = clean_raws(dataset, test[:3], seed=27)
    with trained_model.detection_service(num_shards=1) as service:
        gateway = GpsGateway(service, offline_matcher)
        serve_raw_fleet(gateway, raws, concurrency=3)
        report = gateway.commit_latency()
    assert report.count == sum(len(raw.points) for raw in raws)
    assert report.maximum >= report.p95 >= report.p50 >= 0
    assert "commit lag" in report.format()


# -------------------------------------------------- service batched ingest
@pytest.mark.parametrize("backend", ["inprocess", "process"])
def test_service_ingest_many_matches_per_point(trained_model, dataset_split,
                                               backend):
    """DetectionService.ingest_many (one batched command per shard) labels
    exactly like per-point ingest, including streams opened mid-batch."""
    from repro.serve.backends import IngestEvent

    _, _, test = dataset_split
    fleet = test[:6]
    detector = trained_model.detector()
    events = []
    for vehicle, trajectory in enumerate(fleet):
        for position, segment in enumerate(trajectory.segments):
            if position == 0:
                events.append(IngestEvent(vehicle, segment,
                                          trajectory.destination,
                                          trajectory.start_time_s,
                                          trajectory.trajectory_id))
            else:
                events.append(IngestEvent(vehicle, segment, None, 0.0, None))
    with trained_model.detection_service(
            num_shards=2, backend=backend) as service:
        service.ingest_many(events)
        results = service.finalize_many(list(range(len(fleet))))
        metrics = service.metrics()
    assert metrics.batched_ingests >= 1
    assert metrics.accepted_ingests == len(events)
    for trajectory, result in zip(fleet, results):
        assert result.labels == detector.detect(trajectory).labels


def test_service_ingest_many_rides_out_backpressure(trained_model,
                                                    dataset_split):
    """Tiny queue depth: batched ingest retries (counted as rejections) but
    delivers everything in order."""
    from repro.serve.backends import IngestEvent

    _, _, test = dataset_split
    trajectory = max(test, key=len)
    detector = trained_model.detector()
    with trained_model.detection_service(
            num_shards=1, backend="inprocess", queue_depth=2) as service:
        retries = 0
        for position, segment in enumerate(trajectory.segments):
            if position == 0:
                event = IngestEvent("cab", segment, trajectory.destination,
                                    trajectory.start_time_s, None)
            else:
                event = IngestEvent("cab", segment, None, 0.0, None)
            retries += service.ingest_many([event])
        result = service.finalize("cab")
        metrics = service.metrics()
    assert retries > 0
    assert metrics.rejected_ingests == retries
    assert result.labels == detector.detect(trajectory).labels


def test_service_ingest_many_validates_segments(trained_model, dataset_split):
    from repro.exceptions import LabelingError
    from repro.serve.backends import IngestEvent

    _, _, test = dataset_split
    with trained_model.detection_service(num_shards=1) as service:
        with pytest.raises(LabelingError):
            service.ingest_many([IngestEvent("cab", 10 ** 9, None, 0.0, None)])
        assert service.ingest_many([]) == 0
        assert service.active_vehicles == []
        service.close()
        with pytest.raises(ServiceError):
            service.ingest_many(
                [IngestEvent("cab", test[0].segments[0], None, 0.0, None)])


# ----------------------------------------------- wall-clock session timeouts
def test_advance_clock_closes_idle_sessions(trained_model, dataset,
                                            dataset_split, offline_matcher):
    """A vehicle that simply stops reporting is closed by the wall clock —
    no later fix, no explicit end — and labels exactly like an ended one."""
    _, _, test = dataset_split
    raw = clean_raws(dataset, [test[0]], seed=31)[0]
    config = GatewayConfig(reorder_window=0, session_timeout_s=120.0,
                           ingest_batch=4)

    reference, _ = run_gateway(trained_model, offline_matcher, [raw],
                               config=config, num_shards=1)

    with trained_model.detection_service(num_shards=1) as service:
        gateway = GpsGateway(service, offline_matcher, config)
        for position, point in enumerate(raw.points):
            assert gateway.push_point(
                0, point,
                start_time_s=raw.start_time_s if position == 0 else None) == []
        last_abs = raw.start_time_s + raw.points[-1].t
        # Within the timeout: nothing closes.
        assert gateway.advance_clock(last_abs + 60.0) == []
        assert gateway.active_vehicles == [0]
        sessions = gateway.advance_clock(last_abs + 121.0)
        stats = gateway.stats()
    assert [s.result.labels for s in sessions] == \
        [r.labels for r in reference[0]]
    assert stats.session_timeouts == 1
    assert stats.sessions_closed == 1
    assert gateway.active_vehicles == []  # the vehicle was forgotten


def test_advance_clock_defaults_timeout_to_session_gap(trained_model, dataset,
                                                       dataset_split,
                                                       offline_matcher):
    _, _, test = dataset_split
    raw = clean_raws(dataset, [test[1]], seed=32)[0]
    config = GatewayConfig(reorder_window=0, session_gap_s=300.0,
                           ingest_batch=4)
    with trained_model.detection_service(num_shards=1) as service:
        gateway = GpsGateway(service, offline_matcher, config)
        for position, point in enumerate(raw.points):
            gateway.push_point(
                0, point,
                start_time_s=raw.start_time_s if position == 0 else None)
        last_abs = raw.start_time_s + raw.points[-1].t
        assert gateway.advance_clock(last_abs + 299.0) == []
        sessions = gateway.advance_clock(last_abs + 301.0)
        assert len(sessions) == 1
        assert gateway.stats().session_timeouts == 1
    with pytest.raises(ConfigurationError):
        GatewayConfig(session_timeout_s=-1.0).validate()


def test_advance_clock_flushes_the_reorder_buffer(trained_model, dataset,
                                                  dataset_split,
                                                  offline_matcher):
    """Fixes still sitting in the reorder buffer at timeout are delivered
    before the session closes — the timeout loses no data."""
    _, _, test = dataset_split
    raw = clean_raws(dataset, [test[2]], seed=33)[0]
    config = GatewayConfig(reorder_window=6, session_timeout_s=60.0,
                           ingest_batch=4)
    reference, _ = run_gateway(trained_model, offline_matcher, [raw],
                               config=config, num_shards=1)
    with trained_model.detection_service(num_shards=1) as service:
        gateway = GpsGateway(service, offline_matcher, config)
        for position, point in enumerate(raw.points):
            gateway.push_point(
                0, point,
                start_time_s=raw.start_time_s if position == 0 else None)
        assert gateway.stats().reorder_buffered > 0
        last_abs = raw.start_time_s + raw.points[-1].t
        sessions = gateway.advance_clock(last_abs + 61.0)
    assert [s.result.labels for s in sessions] == \
        [r.labels for r in reference[0]]


# --------------------------------------------------- vehicle-state eviction
def test_max_vehicles_evicts_least_recently_active(trained_model, dataset,
                                                   dataset_split,
                                                   offline_matcher):
    """The vehicle bound closes the least recently active vehicle to admit a
    new one — its session result surfaces instead of being dropped — and
    bounds the matcher's session map with it."""
    _, _, test = dataset_split
    raws = clean_raws(dataset, test[:3], seed=34)
    config = GatewayConfig(reorder_window=0, max_vehicles=2, ingest_batch=4)
    reference, _ = run_gateway(trained_model, offline_matcher, [raws[0]],
                               config=config, num_shards=1)
    with trained_model.detection_service(num_shards=1) as service:
        gateway = GpsGateway(service, offline_matcher, config)
        for vehicle, raw in enumerate(raws[:2]):
            for position, point in enumerate(raw.points):
                # Interleave-free: vehicle 0 finishes first => least recent.
                gateway.push_point(
                    vehicle, point,
                    start_time_s=raw.start_time_s if position == 0 else None)
        assert sorted(gateway.active_vehicles) == [0, 1]
        evicted = gateway.push_point(2, raws[2].points[0],
                                     start_time_s=raws[2].start_time_s)
        stats = gateway.stats()
        assert stats.vehicles_evicted == 1
        assert sorted(gateway.active_vehicles) == [1, 2]
        assert len(gateway.matcher.active_sessions) <= 2
        gateway.end_all()
    assert [s.result.labels for s in evicted] == \
        [r.labels for r in reference[0]]
    with pytest.raises(ConfigurationError):
        GatewayConfig(max_vehicles=-1).validate()


def test_unbounded_gateway_never_evicts(trained_model, dataset, dataset_split,
                                        offline_matcher):
    _, _, test = dataset_split
    raws = clean_raws(dataset, test[:6], seed=35)
    outputs, stats = run_gateway(trained_model, offline_matcher, raws,
                                 num_shards=1)
    assert stats.vehicles_evicted == 0
    assert stats.session_timeouts == 0
    assert "vehicles evicted" in stats.format()


def test_fleet_replay_keeps_results_of_first_push_evictions(
        trained_model, dataset, dataset_split, offline_matcher):
    """Regression: with more vehicles in flight than ``max_vehicles``, a new
    vehicle's *first* push evicts the least recently active one — and
    ``serve_raw_fleet`` used to discard the evictee's finished sessions
    returned by that push. Every closed session must surface in the
    evictee's own slot."""
    _, _, test = dataset_split
    raws = clean_raws(dataset, test[:6], seed=37)
    config = GatewayConfig(reorder_window=0, max_vehicles=2, ingest_batch=4)
    outputs, stats = run_gateway(trained_model, offline_matcher, raws,
                                 config=config, num_shards=2)
    assert stats.vehicles_evicted > 0  # the scenario actually bites
    assert all(len(sessions) > 0 for sessions in outputs)
    assert sum(len(sessions) for sessions in outputs) == stats.sessions_closed
    # Same fleet, no vehicle bound: every point of every trace is covered.
    # With the bound, eviction truncates sessions but never loses one.
    unbounded, unbounded_stats = run_gateway(
        trained_model, offline_matcher, raws, num_shards=2)
    assert stats.matched_points == unbounded_stats.matched_points


# ------------------------------------------------- map-matching confidence
def test_session_results_carry_match_confidence(trained_model, dataset,
                                                dataset_split,
                                                offline_matcher):
    """Clean sessions score a usable confidence in (0, 1]; the noisier the
    trace, the lower the score — the filtering signal downstream wants."""
    _, _, test = dataset_split
    trajectory = max(test, key=len)
    clean = clean_raws(dataset, [trajectory], seed=36, noise=0.5)
    noisy = clean_raws(dataset, [trajectory], seed=36, noise=20.0)
    confidences = {}
    for name, raws in (("clean", clean), ("noisy", noisy)):
        with trained_model.detection_service(num_shards=1) as service:
            gateway = GpsGateway(service, offline_matcher)
            outputs = []
            for position, point in enumerate(raws[0].points):
                outputs.extend(gateway.push_point(
                    0, point,
                    start_time_s=raws[0].start_time_s if position == 0
                    else None))
            outputs.extend(gateway.end(0))
            confidences[name] = [s.confidence for s in outputs]
    assert all(0.0 < c <= 1.0 for c in confidences["clean"])
    assert max(confidences["noisy"]) < max(confidences["clean"])
    # The session result mirrors the match summary exactly.
    with trained_model.detection_service(num_shards=1) as service:
        gateway = GpsGateway(service, offline_matcher)
        sessions = []
        for position, point in enumerate(clean[0].points):
            sessions.extend(gateway.push_point(
                0, point,
                start_time_s=clean[0].start_time_s if position == 0 else None))
        sessions.extend(gateway.end(0))
    (session,) = sessions
    assert session.confidence == session.match.confidence


def test_confidence_is_normalized_against_the_perfect_decode(
        dataset, offline_matcher):
    """A near-noiseless trace scores close to 1 (not a sliver above 0 — the
    ceiling normalization cancels the Gaussian constants), a broken or
    empty session scores exactly 0."""
    from repro.mapmatching import OnlineMapMatcher
    from repro.mapmatching.online import OnlineMatchResult
    from repro.datagen import sample_gps_trace

    rng = np.random.default_rng(40)
    truth = dataset.trajectories[0]
    raw = sample_gps_trace(dataset.network, truth.segments,
                           truth.start_time_s, rng, gps_noise_m=0.1)
    online = OnlineMapMatcher(offline_matcher, max_pending=64)
    for point in raw.points:
        online.push("s", point)
    match = online.finish("s")
    assert match.succeeded
    assert match.confidence > 0.5  # near-perfect fixes -> near-ceiling score
    broken = OnlineMatchResult(route=[1, 2], log_likelihood=-10.0,
                               points_matched=2, forced_commits=0,
                               max_commit_lag=0, broken=True)
    assert broken.confidence == 0.0  # finish() never scores a broken decode
    empty = OnlineMatchResult(route=[], log_likelihood=-10.0,
                              points_matched=0, forced_commits=0,
                              max_commit_lag=0)
    assert empty.confidence == 0.0


# ------------------------------------------------------------ async sessions
def test_async_sessions_poll_and_drain_explicitly(trained_model, dataset,
                                                  dataset_split,
                                                  offline_matcher):
    """The poll/drain surface: closes return nothing, sessions stay pending
    until the bus delivers them, and a stream finalized around the gateway
    is rejected loudly instead of misattributed."""
    _, _, test = dataset_split
    raws = clean_raws(dataset, test[:2], seed=9)
    reference = offline_reference(trained_model, offline_matcher, raws,
                                  num_shards=1)
    with trained_model.detection_service(num_shards=1) as service:
        gateway = GpsGateway(service, offline_matcher,
                             GatewayConfig(async_sessions=True))
        for vehicle, raw in enumerate(raws):
            for position, point in enumerate(raw.points):
                assert gateway.push(
                    vehicle, point.x, point.y, point.t,
                    start_time_s=(raw.start_time_s if position == 0
                                  else None)) == []
        assert gateway.end_all() == []
        assert gateway.pending_sessions == len(raws)
        sessions = gateway.drain_sessions()
        assert gateway.pending_sessions == 0
        by_vehicle = {session.session_key[0]: session for session in sessions}
        for vehicle, expected in enumerate(reference):
            session = by_vehicle[vehicle]
            assert session.result.labels == expected.labels
            assert session.match is not None
            assert session.confidence == session.match.confidence
        # Someone else finalizing through the gateway's service poisons the
        # shared bus; the gateway refuses to guess whose result that is.
        service.ingest_blocking("interloper", test[0].segments[0])
        service.finalize_async(["interloper"])
        service.pump()
        with pytest.raises(GatewayError):
            gateway.poll_sessions()
