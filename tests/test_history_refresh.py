"""Differential tests of the atomic fleet-wide history hot-refresh.

The acceptance bar (the tentpole's differential pin): a service whose
history was refreshed via :meth:`DetectionService.swap_history` to snapshot
``S`` is *label-identical* to a service freshly built from ``S`` — across
shard counts and both backends — for every stream opened after the refresh,
while streams in flight across the refresh boundary label exactly like the
pre-refresh build (each stream pins the snapshot it opened with until
finalize). Around that: the combined weights+history atomic update against a
quiesced single engine, facade validation, version/metrics surfaces, the
engine-level pinning contract, and the OnlineLearner publishing history
alongside weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import LabelingError, ModelError, ServiceError
from repro.history import HistorySnapshot
from repro.serve import clone_model, serve_fleet, weights_snapshot
from repro.trajectory import MatchedTrajectory


# ---------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def drift(trained_model, dataset_split):
    """A refreshed history snapshot that *visibly* shifts normal routes.

    Anomalous test trajectories are duplicated until their detour routes
    dominate their SD-pair groups, so the pre- and post-refresh models
    disagree on at least one fleet trajectory — without that guard the
    differential assertions below would be vacuous.
    """
    _, development, test = dataset_split
    pool = list(test) + list(development)
    anomalous = [t for t in pool if t.labels and any(t.labels)][:4]
    assert anomalous, "the test pool must contain anomalous trajectories"
    extension = []
    tid = 1_000_000
    for trajectory in anomalous:
        for _ in range(30):
            extension.append(MatchedTrajectory(
                tid, list(trajectory.segments),
                start_time_s=trajectory.start_time_s))
            tid += 1
    base = trained_model.pipeline.history
    refreshed = base.extended(extension, version=base.version + 1)
    fleet = pool[:12]
    # Guard: the refresh must actually change some label somewhere.
    old_detector = trained_model.detector()
    new_detector = trained_model.with_history(refreshed).detector()
    assert any(
        old_detector.detect(t).labels != new_detector.detect(t).labels
        for t in fleet + anomalous
    ), "the drifted history must change at least one detection"
    return refreshed, fleet


def open_streams(fleet, prefix, declare, ingest):
    """Feed every point of every trajectory; returns the stream ids."""
    ids = []
    for index, trajectory in enumerate(fleet):
        vehicle = (prefix, index)
        ids.append(vehicle)
        for position, segment in enumerate(trajectory.segments):
            if position == 0:
                ingest(vehicle, segment,
                       destination=(trajectory.destination if declare
                                    else None),
                       start_time_s=trajectory.start_time_s,
                       trajectory_id=trajectory.trajectory_id)
            else:
                ingest(vehicle, segment)
    return ids


def assert_results_match(reference, result):
    assert result.labels == reference.labels
    assert result.spans == reference.spans


# ------------------------------------------------------------- equivalence
@pytest.mark.fleet
@pytest.mark.parametrize("backend,num_shards", [("inprocess", 1),
                                                ("inprocess", 3),
                                                ("process", 2)])
def test_swap_history_matches_fresh_build_with_streams_in_flight(
        trained_model, drift, backend, num_shards):
    """Acceptance: after ``swap_history(S)`` the service is label-identical
    to a fresh build from S for post-refresh streams, while streams that
    crossed the boundary in flight match the *pre*-refresh build."""
    refreshed, fleet = drift
    in_flight, after = fleet[:6], fleet[6:]

    # Reference A: the pre-refresh build (what in-flight streams must match).
    with trained_model.detection_service(
            num_shards=num_shards, backend="inprocess") as reference:
        ids = open_streams(in_flight, "a", declare=False,
                           ingest=reference.ingest_blocking)
        expected_in_flight = reference.finalize_many(ids)

    # Reference B: a service freshly built from snapshot S.
    fresh = trained_model.with_history(refreshed)
    with fresh.detection_service(
            num_shards=num_shards, backend="inprocess") as reference:
        ids = open_streams(after, "b", declare=True,
                           ingest=reference.ingest_blocking)
        expected_after = reference.finalize_many(ids)

    # The system under test: one service, hot-refreshed mid-run. The
    # in-flight streams are deferred (no declared destination), so *every*
    # one of their labels is computed at finalize — after the refresh —
    # which is exactly what the per-stream snapshot pinning must protect.
    with trained_model.detection_service(
            num_shards=num_shards, backend=backend) as service:
        assert service.history_version == trained_model.pipeline.history.version
        in_flight_ids = open_streams(in_flight, "a", declare=False,
                                     ingest=service.ingest_blocking)
        new_version = service.swap_history(refreshed)
        assert new_version == refreshed.version
        after_ids = open_streams(after, "b", declare=True,
                                 ingest=service.ingest_blocking)
        results_after = service.finalize_many(after_ids)
        results_in_flight = service.finalize_many(in_flight_ids)
        metrics = service.metrics()

    for reference, result in zip(expected_in_flight, results_in_flight):
        assert_results_match(reference, result)
    for reference, result in zip(expected_after, results_after):
        assert_results_match(reference, result)
    assert metrics.history_version == refreshed.version
    assert metrics.history_refreshes == 1
    assert all(s.history_version == refreshed.version for s in metrics.shards)


@pytest.mark.fleet
@pytest.mark.parametrize("backend", ["inprocess", "process"])
def test_combined_weights_and_history_swap_is_one_atomic_boundary(
        trained_model, drift, backend):
    """``swap(weights=..., history=...)`` equals a single engine that loads
    both at one quiesced boundary — mixed in-flight declared streams keep
    their pinned history while later points get the new weights."""
    refreshed, fleet = drift
    rng = np.random.default_rng(7)
    snapshot = weights_snapshot(trained_model)
    for state in snapshot.values():
        for name, value in state.items():
            state[name] = value + rng.normal(0.0, 0.05, size=value.shape)
    half = [t for t in fleet if len(t) >= 4][:6]

    def drive(ingest, advance, finalize, swap):
        for index, trajectory in enumerate(half):
            cut = len(trajectory.segments) // 2
            ingest(index, trajectory.segments[0],
                   destination=trajectory.destination,
                   start_time_s=trajectory.start_time_s,
                   trajectory_id=trajectory.trajectory_id)
            for segment in trajectory.segments[1:cut]:
                ingest(index, segment)
        advance()
        swap()
        for index, trajectory in enumerate(half):
            cut = len(trajectory.segments) // 2
            for segment in trajectory.segments[cut:]:
                ingest(index, segment)
        advance()
        return finalize(list(range(len(half))))

    engine = clone_model(trained_model).stream_engine()

    def engine_quiesce():
        while engine.tick():
            pass

    def engine_swap():
        engine.load_weights(snapshot["rsrnet"], snapshot["asdnet"])
        engine.load_history(refreshed)

    reference = drive(engine.ingest, engine_quiesce, engine.finalize_many,
                      engine_swap)

    with trained_model.detection_service(
            num_shards=2, backend=backend) as service:
        results = drive(service.ingest_blocking, service.drain,
                        service.finalize_many,
                        lambda: service.swap(weights=snapshot,
                                             history=refreshed))
        assert service.model_version == 2
        assert service.history_version == refreshed.version
    for before, after in zip(reference, results):
        assert_results_match(before, after)


def test_streams_opened_after_refresh_resolve_new_normal_routes(
        trained_model, drift):
    """A declared-destination stream opened post-refresh resolves its normal
    routes from the new snapshot at open — not lazily at finalize."""
    refreshed, fleet = drift
    fresh_detector = trained_model.with_history(refreshed).detector()
    with trained_model.detection_service(num_shards=2) as service:
        service.swap_history(refreshed)
        trajectory = fleet[0]
        for position, segment in enumerate(trajectory.segments):
            if position == 0:
                service.ingest_blocking(
                    "cab", segment, destination=trajectory.destination,
                    start_time_s=trajectory.start_time_s)
            else:
                service.ingest_blocking("cab", segment)
        result = service.finalize("cab")
    assert result.labels == fresh_detector.detect(trajectory).labels


# ------------------------------------------------------------- engine unit
def test_engine_load_history_pins_in_flight_streams(trained_model, drift):
    """StreamEngine-level contract: deferred in-flight streams keep their
    open-time snapshot across load_history; new streams use the new one."""
    refreshed, fleet = drift
    baseline = clone_model(trained_model).stream_engine()
    for segment in fleet[0].segments:
        baseline.ingest("old", segment)
    expected_old = baseline.finalize("old")

    fresh_engine = trained_model.with_history(refreshed).stream_engine()
    for segment in fleet[1].segments:
        fresh_engine.ingest("new", segment)
    expected_new = fresh_engine.finalize("new")

    engine = clone_model(trained_model).stream_engine()
    assert engine.history_version == trained_model.pipeline.history.version
    for segment in fleet[0].segments:
        engine.ingest("old", segment)  # deferred: labels all at finalize
    engine.load_history(refreshed)
    assert engine.history_version == refreshed.version
    assert engine.history_refreshes == 1
    for segment in fleet[1].segments:
        engine.ingest("new", segment)
    result_new = engine.finalize("new")
    result_old = engine.finalize("old")
    assert_results_match(expected_old, result_old)
    assert_results_match(expected_new, result_new)
    with pytest.raises(ModelError):
        engine.load_history("not a snapshot")


# ---------------------------------------------------------------- validation
def test_swap_validation_and_rejection_leaves_service_intact(trained_model,
                                                             dataset_split):
    _, _, test = dataset_split
    trajectory = test[0]
    with trained_model.detection_service(num_shards=2) as service:
        service.ingest("cab", trajectory.segments[0],
                       destination=trajectory.destination)
        before = service.history_version
        with pytest.raises(ServiceError):
            service.swap()  # neither weights nor history
        with pytest.raises(ServiceError):
            service.swap_history("bogus")
        mismatched = HistorySnapshot.build(test[:5], slots_per_day=12)
        with pytest.raises(ServiceError):
            service.swap_history(mismatched)
        unknown = HistorySnapshot.build(
            [MatchedTrajectory(1, [10 ** 9, 10 ** 9 + 1])], slots_per_day=24)
        with pytest.raises(LabelingError):
            service.swap_history(unknown)
        assert service.history_version == before
        assert service.metrics().history_refreshes == 0
        # The in-flight stream survived every rejected swap.
        assert service.active_vehicles == ["cab"]


def test_swap_history_coerces_model_pipeline_and_store(trained_model,
                                                       dataset_split):
    """swap_history accepts the snapshot's natural carriers directly."""
    train, _, _ = dataset_split
    model = clone_model(trained_model)
    model.pipeline.extend_history(train[:20])
    expected = model.pipeline.history.version
    with trained_model.detection_service(num_shards=1) as service:
        assert service.swap_history(model) == expected
        assert service.swap_history(model.pipeline) == expected
        assert service.swap_history(model.pipeline.store) == expected
        assert service.swap_history(model.pipeline.history) == expected
        assert service.metrics().history_refreshes == 4


# ------------------------------------------------------- learner integration
def test_online_learner_publishes_history_with_weights(dataset, dataset_split):
    """observe_part pushes the extended history to attached services in the
    same atomic update as the fine-tuned weights."""
    from repro.config import (ASDNetConfig, LabelingConfig, RSRNetConfig,
                              TrainingConfig)
    from repro.core import OnlineLearner, RL4OASDTrainer

    train, development, test = dataset_split
    trainer = RL4OASDTrainer(
        dataset.network, train[:80],
        labeling_config=LabelingConfig(alpha=0.35, delta=0.25),
        rsrnet_config=RSRNetConfig(embedding_dim=12, hidden_dim=12, nrf_dim=6,
                                   seed=5),
        asdnet_config=ASDNetConfig(label_embedding_dim=6, seed=6),
        training_config=TrainingConfig(
            pretrain_trajectories=20, pretrain_epochs=1,
            joint_trajectories=10, joint_epochs=1, validation_interval=10,
            seed=7),
        development_set=development[:10],
    )
    learner = OnlineLearner(trainer, batch_size=8)
    model = learner.initial_fit()
    assert model.pipeline.history.version == 1
    with learner.attach_service(
            model.detection_service(num_shards=2)) as service:
        trajectory = test[0]
        service.ingest_blocking("inflight", trajectory.segments[0],
                                destination=trajectory.destination)
        learner.observe_part(1, train[80:96])
        assert model.pipeline.history.version == 2  # fine_tune extended it
        assert service.model_version == 2
        assert service.history_version == 2  # published atomically
        for segment in trajectory.segments[1:]:
            service.ingest_blocking("inflight", segment)
        result = service.finalize("inflight")  # survived the combined swap
        assert len(result.labels) == len(trajectory)
        # A post-refresh stream labels like a fresh build from the learner's
        # current model (weights + history), end to end.
        with clone_model(learner.model).detection_service(
                num_shards=2) as fresh_service:
            reference = serve_fleet(fresh_service, [test[1]],
                                    concurrency=1)[0]
        for position, segment in enumerate(test[1].segments):
            if position == 0:
                service.ingest_blocking("next", segment,
                                        destination=test[1].destination,
                                        start_time_s=test[1].start_time_s)
            else:
                service.ingest_blocking("next", segment)
        assert_results_match(reference, service.finalize("next"))
