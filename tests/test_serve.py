"""Differential and behavioural tests of the sharded detection service.

The service must be *label-identical* to a single
:class:`~repro.core.stream.StreamEngine` (and therefore to
:class:`~repro.core.detector.OnlineDetector`, which the engine is pinned
against) — whatever the shard count, the backend, the arrival interleaving,
the backpressure stalls, and even across a mid-run model hot-swap. These
tests replay randomized fleets through both paths and compare exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ServeConfig
from repro.exceptions import (ConfigurationError, LabelingError, ModelError,
                              ServiceError)
from repro.serve import (DetectionService, IngestStatus, clone_model,
                         serve_fleet, serve_fleet_async, shard_of,
                         weights_snapshot)
from repro.trajectory.ops import interleave_streams


def run_randomized_service_fleet(service, trajectories, rng, pump_every=3):
    """Drive a service with a random interleaving of the fleet's points."""
    events = 0
    for index, position, segment in interleave_streams(trajectories, rng):
        trajectory = trajectories[index]
        if position == 0:
            service.ingest_blocking(index, segment,
                                    destination=trajectory.destination,
                                    start_time_s=trajectory.start_time_s,
                                    trajectory_id=trajectory.trajectory_id)
        else:
            service.ingest_blocking(index, segment)
        events += 1
        if events % pump_every == 0:
            service.pump()
    return service.finalize_many(list(range(len(trajectories))))


def assert_results_match(reference, result):
    assert result.labels == reference.labels
    assert result.spans == reference.spans
    assert result.is_anomalous == reference.is_anomalous


def perturbed_snapshot(model, scale=0.05, seed=0):
    """A weights snapshot visibly different from the model's own weights."""
    rng = np.random.default_rng(seed)
    snapshot = weights_snapshot(model)
    for state in snapshot.values():
        for name, value in state.items():
            state[name] = value + rng.normal(0.0, scale, size=value.shape)
    return snapshot


# ------------------------------------------------------------- equivalence
@pytest.mark.fleet
def test_inprocess_service_matches_detector_on_randomized_fleets(
        trained_model, dataset_split):
    """Acceptance: identical labels over >= 100 randomized interleaved
    streams, across shard counts, behind the in-process backend."""
    _, development, test = dataset_split
    pool = list(test) + list(development)
    detector = trained_model.detector()
    total_streams = 0
    for seed, num_shards in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 2)]:
        rng = np.random.default_rng(seed)
        fleet = [pool[int(rng.integers(len(pool)))] for _ in range(25)]
        with trained_model.detection_service(
                num_shards=num_shards, backend="inprocess",
                queue_depth=32) as service:
            results = run_randomized_service_fleet(
                service, fleet, rng, pump_every=int(rng.integers(1, 7)))
            for trajectory, result in zip(fleet, results):
                assert_results_match(detector.detect(trajectory), result)
            assert service.metrics().total_points == sum(
                len(t) for t in fleet)
        total_streams += len(fleet)
    assert total_streams >= 100


@pytest.mark.fleet
def test_process_backend_matches_detector(trained_model, dataset_split):
    """The multi-process backend is label-identical too (2 shards)."""
    _, development, test = dataset_split
    fleet = (list(test) + list(development))[:40]
    detector = trained_model.detector()
    with trained_model.detection_service(
            num_shards=2, backend="process", queue_depth=64) as service:
        results = serve_fleet(service, fleet, concurrency=16)
        metrics = service.metrics()
    for trajectory, result in zip(fleet, results):
        assert_results_match(detector.detect(trajectory), result)
        assert result.trajectory is trajectory  # originals reattached
    assert metrics.total_points == sum(len(t) for t in fleet)
    assert metrics.streams_finalized == len(fleet)
    assert {shard.backend for shard in metrics.shards} == {"process"}


@pytest.mark.fleet
@pytest.mark.parametrize("backend,num_shards", [("inprocess", 3),
                                                ("process", 2)])
def test_hot_swap_mid_run_matches_single_engine(trained_model, dataset_split,
                                                backend, num_shards):
    """Acceptance: identical labels across a mid-run model hot-swap.

    Half the fleet's points arrive, the model is swapped for perturbed
    weights, the rest arrives. The reference is one StreamEngine whose
    weights are swapped (after quiescing — the boundary the service
    guarantees) at the same point of the arrival sequence.
    """
    _, development, test = dataset_split
    fleet = (list(test) + list(development))[:12]
    snapshot = perturbed_snapshot(trained_model, seed=3)
    cut_round = max(len(t) for t in fleet) // 2

    def drive(ingest, advance, finalize, swap):
        cursors = [0] * len(fleet)
        rounds = 0
        while True:
            for vehicle, trajectory in enumerate(fleet):
                cursor = cursors[vehicle]
                if cursor >= len(trajectory.segments):
                    continue
                if cursor == 0:
                    ingest(vehicle, trajectory.segments[0],
                           destination=trajectory.destination,
                           start_time_s=trajectory.start_time_s,
                           trajectory_id=trajectory.trajectory_id)
                else:
                    ingest(vehicle, trajectory.segments[cursor])
                cursors[vehicle] = cursor + 1
            advance()
            rounds += 1
            if rounds == cut_round:
                swap()
            if all(cursors[v] >= len(fleet[v].segments)
                   for v in range(len(fleet))):
                return finalize(list(range(len(fleet))))

    engine = clone_model(trained_model).stream_engine()

    def engine_swap():
        while engine.tick():
            pass
        engine.load_weights(snapshot["rsrnet"], snapshot["asdnet"])

    reference = drive(engine.ingest, engine.tick, engine.finalize_many,
                      engine_swap)

    with trained_model.detection_service(
            num_shards=num_shards, backend=backend,
            queue_depth=64) as service:
        results = drive(service.ingest_blocking, service.pump,
                        service.finalize_many,
                        lambda: service.swap_model(snapshot))
        assert service.model_version == 2
    for before, after in zip(reference, results):
        assert_results_match(before, after)
    # The swap was real: the snapshot differs from the serving weights.
    original = weights_snapshot(trained_model)
    assert any(
        not np.array_equal(original[net][name], snapshot[net][name])
        for net in original for name in original[net])


def test_swap_rejects_mismatched_snapshot(trained_model, dataset_split):
    _, _, test = dataset_split
    with trained_model.detection_service(num_shards=2) as service:
        service.ingest("cab", test[0].segments[0],
                       destination=test[0].destination)
        bad = weights_snapshot(trained_model)
        bad["rsrnet"] = {"nope": np.zeros(3)}
        with pytest.raises(ModelError):
            service.swap_model(bad)
        with pytest.raises(ServiceError):
            service.swap_model({"rsrnet": bad["rsrnet"]})  # missing asdnet
        assert service.model_version == 1
        # The in-flight stream survived the rejected swaps.
        assert service.active_vehicles == ["cab"]


# ------------------------------------------------------------ backpressure
def test_backpressure_bounded_queue_retry_loses_nothing(trained_model,
                                                        dataset_split):
    """A full shard queue rejects with RETRY_LATER; retrying after a pump
    delivers every point and the labels still match the reference."""
    _, _, test = dataset_split
    trajectory = max(test, key=len)
    detector = trained_model.detector()
    with trained_model.detection_service(
            num_shards=1, backend="inprocess", queue_depth=2) as service:
        rejected = 0
        for position, segment in enumerate(trajectory.segments):
            kwargs = ({"destination": trajectory.destination,
                       "start_time_s": trajectory.start_time_s}
                      if position == 0 else {})
            while True:
                status = service.ingest(trajectory.trajectory_id, segment,
                                        **kwargs)
                if status.accepted:
                    break
                rejected += 1
                service.pump()
        result = service.finalize(trajectory.trajectory_id)
        metrics = service.metrics()
    # Depth 2 must have filled at least once on a longest trajectory.
    assert rejected > 0
    assert metrics.rejected_ingests == rejected
    assert metrics.accepted_ingests == len(trajectory)
    assert_results_match(detector.detect(trajectory), result)


def test_ingest_status_truthiness():
    assert IngestStatus.ACCEPTED.accepted
    assert bool(IngestStatus.ACCEPTED)
    assert not IngestStatus.RETRY_LATER.accepted
    assert not bool(IngestStatus.RETRY_LATER)


# ------------------------------------------------------------- error paths
@pytest.mark.parametrize("backend", ["inprocess", "process"])
def test_unknown_segment_rejected_synchronously(trained_model, dataset_split,
                                                backend):
    """Bad fixes fail fast at the facade — never queued, never poisoning a
    shard — for both backends."""
    _, _, test = dataset_split
    trajectory = test[0]
    with trained_model.detection_service(
            num_shards=2, backend=backend) as service:
        service.ingest("good", trajectory.segments[0],
                       destination=trajectory.destination)
        with pytest.raises(LabelingError):
            service.ingest("bad", 10 ** 9)
        with pytest.raises(LabelingError):
            service.ingest("good", 10 ** 9)
        with pytest.raises(LabelingError):
            service.ingest("late", trajectory.segments[0],
                           destination=10 ** 9)
        assert service.active_vehicles == ["good"]
        for segment in trajectory.segments[1:]:
            service.ingest_blocking("good", segment)
        result = service.finalize("good")
    assert result.labels == trained_model.detector().detect(trajectory).labels


def test_finalize_unknown_vehicle_raises(trained_model):
    with trained_model.detection_service(num_shards=2) as service:
        with pytest.raises(ServiceError):
            service.finalize("ghost")
        with pytest.raises(ServiceError):
            service.finalize_many(["cab", "cab"])


def test_destination_mismatch_propagates_from_worker(trained_model,
                                                     dataset_split):
    """A worker-side finalize failure surfaces in the caller and leaves the
    stream open for more points (process backend)."""
    _, _, test = dataset_split
    trajectory = next(t for t in test
                      if len(t) >= 4 and t.segments[1] != t.destination)
    with trained_model.detection_service(
            num_shards=2, backend="process") as service:
        service.ingest_blocking("cab", trajectory.segments[0],
                                destination=trajectory.destination)
        service.ingest_blocking("cab", trajectory.segments[1])
        with pytest.raises(ModelError):
            service.finalize("cab")
        assert service.active_vehicles == ["cab"]
        for segment in trajectory.segments[2:]:
            service.ingest_blocking("cab", segment)
        result = service.finalize("cab")
    assert_results_match(trained_model.detector().detect(trajectory), result)


def test_closed_service_refuses_work(trained_model, dataset_split):
    _, _, test = dataset_split
    service = trained_model.detection_service(num_shards=1)
    service.close()
    service.close()  # idempotent
    with pytest.raises(ServiceError):
        service.ingest("cab", test[0].segments[0])
    with pytest.raises(ServiceError):
        service.metrics()


def test_service_validates_construction(trained_model):
    with pytest.raises(ServiceError):
        DetectionService(trained_model, num_shards=0)
    with pytest.raises(ServiceError):
        DetectionService(trained_model, queue_depth=0)
    with pytest.raises(ServiceError):
        DetectionService(trained_model, backend="quantum")


def test_serve_config_supplies_defaults(trained_model):
    config = ServeConfig(num_shards=3, backend="inprocess", queue_depth=7)
    with trained_model.detection_service(serve_config=config) as service:
        assert service.num_shards == 3
        assert service.backend_name == "inprocess"
    with trained_model.detection_service(serve_config=config,
                                         num_shards=2) as service:
        assert service.num_shards == 2  # explicit keyword wins
    with pytest.raises(ConfigurationError):
        ServeConfig(backend="quantum").validate()
    with pytest.raises(ConfigurationError):
        ServeConfig(num_shards=0).validate()


def test_serve_fleet_validates_concurrency(trained_model, dataset_split):
    _, _, test = dataset_split
    with trained_model.detection_service(num_shards=1) as service:
        with pytest.raises(ServiceError):
            serve_fleet(service, test[:2], concurrency=0)


# ---------------------------------------------------------------- isolation
def test_service_serves_a_snapshot_not_the_live_model(trained_model,
                                                      dataset_split):
    """Mutating the caller's model after construction must not change what
    the service serves — shards run on a snapshot until an explicit swap."""
    _, _, test = dataset_split
    model = clone_model(trained_model)  # never mutate the shared fixture
    expected = [trained_model.detector().detect(t).labels for t in test[:6]]
    with model.detection_service(num_shards=2, backend="inprocess") as service:
        for parameter in model.rsrnet.parameters():
            parameter.value += 1.0  # vandalize the live model
        results = serve_fleet(service, test[:6], concurrency=3)
    assert [r.labels for r in results] == expected


# ------------------------------------------------------------------ metrics
def test_metrics_roll_up_across_shards(trained_model, dataset_split):
    _, _, test = dataset_split
    fleet = test[:10]
    with trained_model.detection_service(
            num_shards=2, backend="inprocess") as service:
        serve_fleet(service, fleet, concurrency=5)
        metrics = service.metrics()
    total_points = sum(len(t) for t in fleet)
    assert metrics.num_shards == 2
    assert metrics.total_points == total_points
    assert metrics.streams_finalized == len(fleet)
    assert metrics.streams_open == 0
    assert sum(s.points_processed for s in metrics.shards) == total_points
    assert 0.0 < metrics.cache_hit_rate <= 1.0
    assert all(s.mean_tick_batch >= 1.0 for s in metrics.shards
               if s.points_processed)
    report = metrics.throughput_report(total_seconds=1.0)
    assert report.total_points == total_points
    assert report.num_trajectories == len(fleet)
    assert "DetectionService" in metrics.format()
    assert "shard[0]" in metrics.format()
    per_shard = [s.throughput_report() for s in metrics.shards]
    assert sum(r.total_points for r in per_shard) == total_points


# ----------------------------------------------------------------- sharding
def test_shard_assignment_is_stable_and_covers_shards():
    assignments = [shard_of(vehicle, 4) for vehicle in range(200)]
    assert assignments == [shard_of(vehicle, 4) for vehicle in range(200)]
    assert set(assignments) == {0, 1, 2, 3}
    # Different key types never collide by representation.
    assert shard_of(1, 64) != shard_of("1", 64) or True  # both valid shards
    from repro.serve.sharding import shard_key_bytes
    assert shard_key_bytes(1) != shard_key_bytes("1")
    assert shard_key_bytes(True) != shard_key_bytes(1)
    assert shard_key_bytes(b"1") != shard_key_bytes("1")
    assert shard_key_bytes(("depot", 7)) == shard_key_bytes(("depot", 7))
    assert shard_of("anything", 1) == 0
    with pytest.raises(ServiceError):
        shard_of("cab", 0)


def test_shard_assignment_spreads_similar_keys():
    """Regression: raw CRC-32 is linear, so keys differing in one character
    — consecutive integer ids, gateway session tuples ``(vehicle, 0)`` —
    clustered onto few shards (the first 8 integer fleets all landed on one
    shard of 4). The avalanche finalizer must spread them."""
    for num_shards in (2, 3, 4, 8):
        for keys in ([(vehicle, 0) for vehicle in range(64)],
                     list(range(64)),
                     [f"cab-{vehicle}" for vehicle in range(64)]):
            used = {shard_of(key, num_shards) for key in keys}
            assert len(used) == num_shards, (num_shards, keys[:3], used)
    # The exact shape of the old failure: vehicles 0..7, first session, 4
    # shards — every one of them used to land on shard 0.
    assert len({shard_of((vehicle, 0), 4) for vehicle in range(8)}) >= 3


def test_same_vehicle_always_routes_to_same_shard(trained_model,
                                                  dataset_split):
    _, _, test = dataset_split
    with trained_model.detection_service(num_shards=4) as service:
        for vehicle in ("cab-1", "cab-2", 3, (4, "x")):
            assert service.shard_for(vehicle) == service.shard_for(vehicle)
            assert 0 <= service.shard_for(vehicle) < 4


# ------------------------------------------------------- learner integration
def test_online_learner_hot_swaps_attached_services(dataset, dataset_split):
    """OnlineLearner.observe_part pushes fresh weights into every attached
    service without dropping the in-flight stream."""
    from repro.config import (ASDNetConfig, LabelingConfig, RSRNetConfig,
                              TrainingConfig)
    from repro.core import OnlineLearner, RL4OASDTrainer

    train, development, test = dataset_split
    trainer = RL4OASDTrainer(
        dataset.network, train[:80],
        labeling_config=LabelingConfig(alpha=0.35, delta=0.25),
        rsrnet_config=RSRNetConfig(embedding_dim=12, hidden_dim=12, nrf_dim=6,
                                   seed=5),
        asdnet_config=ASDNetConfig(label_embedding_dim=6, seed=6),
        training_config=TrainingConfig(
            pretrain_trajectories=20, pretrain_epochs=1,
            joint_trajectories=10, joint_epochs=1, validation_interval=10,
            seed=7),
        development_set=development[:10],
    )
    learner = OnlineLearner(trainer, batch_size=8)
    model = learner.initial_fit()
    with learner.attach_service(
            model.detection_service(num_shards=2)) as service:
        trajectory = test[0]
        service.ingest_blocking("inflight", trajectory.segments[0],
                                destination=trajectory.destination)
        assert service.model_version == 1
        learner.observe_part(1, train[80:96])
        assert service.model_version == 2  # swapped automatically
        for segment in trajectory.segments[1:]:
            service.ingest_blocking("inflight", segment)
        result = service.finalize("inflight")  # the stream survived the swap
        assert len(result.labels) == len(trajectory)
        learner.detach_service(service)
        learner.detach_service(service)  # no-op when unknown
        learner.observe_part(2, train[96:112])
        assert service.model_version == 2  # no longer attached
    assert learner.model is not None


def test_rejected_swap_keeps_process_protocol_usable(trained_model,
                                                     dataset_split):
    """A swap rejected by worker-side validation must not desync the
    command/reply protocol: every shard's reply is consumed, and later
    requests (metrics, finalize) still answer correctly."""
    _, _, test = dataset_split
    trajectory = test[0]
    with trained_model.detection_service(
            num_shards=2, backend="process") as service:
        service.ingest_blocking("cab", trajectory.segments[0],
                                destination=trajectory.destination)
        bad = weights_snapshot(trained_model)
        name = next(iter(bad["rsrnet"]))
        bad["rsrnet"][name] = np.zeros((1, 1))
        with pytest.raises(ModelError):
            service.swap_model(bad)
        assert service.model_version == 1
        # The service (and every shard) still answers requests in order.
        metrics = service.metrics()
        assert metrics.num_shards == 2
        for segment in trajectory.segments[1:]:
            service.ingest_blocking("cab", segment)
        result = service.finalize("cab")
    assert result.labels == trained_model.detector().detect(trajectory).labels


def test_deferred_streams_across_swap_match_single_engine(trained_model,
                                                          dataset_split):
    """A deferred stream (no declared destination) buffers its points, so a
    mid-run swap means *all* its points are labeled by the new weights — on
    the service and on a single engine swapped at the same boundary alike."""
    _, _, test = dataset_split
    fleet = test[:5]
    snapshot = perturbed_snapshot(trained_model, seed=9)

    engine = clone_model(trained_model).stream_engine()
    for index, trajectory in enumerate(fleet):
        for segment in trajectory.segments:
            engine.ingest(index, segment)  # deferred: destination undeclared
    while engine.tick():
        pass
    engine.load_weights(snapshot["rsrnet"], snapshot["asdnet"])
    reference = engine.finalize_many(list(range(len(fleet))))

    with trained_model.detection_service(num_shards=3) as service:
        for index, trajectory in enumerate(fleet):
            for segment in trajectory.segments:
                service.ingest_blocking(index, segment)
        service.drain()
        service.swap_model(snapshot)
        results = service.finalize_many(list(range(len(fleet))))
    for before, after in zip(reference, results):
        assert_results_match(before, after)


def test_learner_skips_closed_services(dataset, dataset_split):
    """observe_part never crashes on (and auto-detaches) a closed service,
    and still pushes the update to the remaining attached ones."""
    from repro.config import (ASDNetConfig, LabelingConfig, RSRNetConfig,
                              TrainingConfig)
    from repro.core import OnlineLearner, RL4OASDTrainer

    train, development, _ = dataset_split
    trainer = RL4OASDTrainer(
        dataset.network, train[:60],
        labeling_config=LabelingConfig(alpha=0.35, delta=0.25),
        rsrnet_config=RSRNetConfig(embedding_dim=12, hidden_dim=12, nrf_dim=6,
                                   seed=5),
        asdnet_config=ASDNetConfig(label_embedding_dim=6, seed=6),
        training_config=TrainingConfig(
            pretrain_trajectories=16, pretrain_epochs=1,
            joint_trajectories=8, joint_epochs=1, validation_interval=8,
            seed=7),
        development_set=development[:8],
    )
    learner = OnlineLearner(trainer, batch_size=8)
    model = learner.initial_fit()
    abandoned = learner.attach_service(model.detection_service(num_shards=1))
    kept = learner.attach_service(model.detection_service(num_shards=2))
    abandoned.close()
    learner.observe_part(1, train[60:72])
    assert kept.model_version == 2  # the live service still got the update
    kept.close()


# ------------------------------------------------------------- results bus
@pytest.mark.fleet
@pytest.mark.parametrize("num_shards,backend", [(1, "inprocess"),
                                                (3, "inprocess"),
                                                (2, "process")])
def test_async_driver_matches_synchronous_path(trained_model, dataset_split,
                                               num_shards, backend):
    """Satellite pin: the asyncio fleet driver — batched ingest, bus-closed
    streams — is label-identical to the synchronous ingest_blocking /
    finalize_many path, across shard counts and both backends."""
    import asyncio

    _, development, test = dataset_split
    fleet = (list(test) + list(development))[:16]
    rng = np.random.default_rng(num_shards)
    with trained_model.detection_service(
            num_shards=num_shards, backend=backend,
            queue_depth=64) as service:
        reference = run_randomized_service_fleet(service, fleet, rng)
    with trained_model.detection_service(
            num_shards=num_shards, backend=backend,
            queue_depth=64) as service:
        results = asyncio.run(serve_fleet_async(service, fleet,
                                                concurrency=8))
        metrics = service.metrics()
    for before, after in zip(reference, results):
        assert_results_match(before, after)
    assert [r.trajectory for r in results] == fleet  # originals reattached
    # The run really went through the bus, and the bus came out clean.
    assert metrics.async_finalizes >= 1
    assert metrics.results_delivered == len(fleet)
    assert metrics.results_pending == 0
    assert metrics.results_duplicates == 0
    assert metrics.bus_lag == 0
    assert sum(stats.published for stats in metrics.bus) == len(fleet)


def test_sync_serve_fleet_is_the_async_driver(trained_model, dataset_split):
    """serve_fleet is a thin wrapper: same results object for object."""
    import asyncio

    _, _, test = dataset_split
    fleet = test[:4]
    with trained_model.detection_service(num_shards=2) as service:
        sync_results = serve_fleet(service, fleet, concurrency=4)
    with trained_model.detection_service(num_shards=2) as service:
        async_results = asyncio.run(serve_fleet_async(service, fleet,
                                                      concurrency=4))
    for before, after in zip(sync_results, async_results):
        assert_results_match(before, after)
