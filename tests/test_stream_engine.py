"""Differential tests: the batched StreamEngine vs. the reference detector.

The fleet engine must be *label-identical* to :class:`OnlineDetector` — same
labels, same anomalous spans, same ``is_anomalous`` — no matter how many
streams run concurrently or how their points interleave. These tests replay
randomized fleets through both paths and compare exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import StreamEngine, replay_fleet
from repro.core.stream import SegmentFeatureCache, SegmentRecord
from repro.exceptions import ModelError
from repro.trajectory.ops import interleave_streams


def run_randomized_fleet(engine, trajectories, rng, tick_every=3):
    """Drive the engine with a random interleaving of the fleet's points."""
    events = 0
    for index, position, segment in interleave_streams(trajectories, rng):
        trajectory = trajectories[index]
        if position == 0:
            engine.ingest(index, segment,
                          destination=trajectory.destination,
                          start_time_s=trajectory.start_time_s,
                          trajectory_id=trajectory.trajectory_id)
        else:
            engine.ingest(index, segment)
        events += 1
        if events % tick_every == 0:
            engine.tick()
    return [engine.finalize(index) for index in range(len(trajectories))]


def assert_results_match(reference, result):
    assert result.labels == reference.labels
    assert result.spans == reference.spans
    assert result.is_anomalous == reference.is_anomalous
    assert len(result.labels) == len(reference.trajectory)


# ------------------------------------------------------------- equivalence
@pytest.mark.fleet
def test_matches_online_detector_on_randomized_fleets(trained_model,
                                                      dataset_split):
    """Acceptance: identical labels over >= 100 randomized interleaved streams."""
    _, development, test = dataset_split
    pool = list(test) + list(development)
    detector = trained_model.detector()
    total_streams = 0
    for seed in range(5):
        rng = np.random.default_rng(seed)
        fleet = [pool[int(rng.integers(len(pool)))]
                 for _ in range(25)]
        engine = trained_model.stream_engine()
        results = run_randomized_fleet(engine, fleet, rng,
                                       tick_every=int(rng.integers(1, 7)))
        for trajectory, result in zip(fleet, results):
            assert_results_match(detector.detect(trajectory), result)
        total_streams += len(fleet)
    assert total_streams >= 100


@pytest.mark.fleet
def test_lockstep_replay_matches_detector(trained_model, dataset_split):
    _, _, test = dataset_split
    detector = trained_model.detector()
    engine = trained_model.stream_engine()
    results = replay_fleet(engine, test, concurrency=8)
    assert len(results) == len(test)
    for trajectory, result in zip(test, results):
        assert_results_match(detector.detect(trajectory), result)
        assert result.trajectory.trajectory_id == trajectory.trajectory_id


def test_single_stream_tick_per_point(trained_model, dataset_split):
    """One vehicle, one tick per ingested point — the degenerate fleet."""
    _, _, test = dataset_split
    detector = trained_model.detector()
    for trajectory in test[:5]:
        engine = trained_model.stream_engine()
        for position, segment in enumerate(trajectory.segments):
            if position == 0:
                engine.ingest("cab", segment,
                              destination=trajectory.destination,
                              start_time_s=trajectory.start_time_s)
            else:
                engine.ingest("cab", segment)
            engine.tick()
        assert_results_match(detector.detect(trajectory),
                             engine.finalize("cab"))


def test_deferred_mode_without_destination(trained_model, dataset_split):
    """Streams with undeclared destinations buffer, then match exactly."""
    _, _, test = dataset_split
    detector = trained_model.detector()
    engine = trained_model.stream_engine()
    for index, trajectory in enumerate(test[:6]):
        for position, segment in enumerate(trajectory.segments):
            if position == 0:
                engine.ingest(index, segment,
                              start_time_s=trajectory.start_time_s)
            else:
                engine.ingest(index, segment)
        assert engine.pending_points(index) == len(trajectory)
    for index, trajectory in enumerate(test[:6]):
        assert_results_match(detector.detect(trajectory),
                             engine.finalize(index))


def test_sampling_mode_matches_fresh_detector(trained_model, dataset_split):
    """Non-greedy engine == a fresh stochastic detector per trajectory."""
    _, _, test = dataset_split
    engine = trained_model.stream_engine(greedy=False, seed=11)
    results = replay_fleet(engine, test[:8], concurrency=4)
    for trajectory, result in zip(test[:8], results):
        reference = trained_model.detector(greedy=False, seed=11).detect(
            trajectory)
        assert_results_match(reference, result)


def test_cache_eviction_does_not_change_labels(trained_model, dataset_split):
    """A pathologically small LRU still yields identical labels."""
    _, _, test = dataset_split
    detector = trained_model.detector()
    engine = trained_model.stream_engine(cache_size=2)
    results = replay_fleet(engine, test[:10], concurrency=5)
    for trajectory, result in zip(test[:10], results):
        assert_results_match(detector.detect(trajectory), result)
    assert len(engine.cache) <= 2
    points = sum(len(t) for t in test[:10])
    assert engine.cache.hits + engine.cache.misses == points


def test_cache_is_shared_across_the_fleet(trained_model, dataset_split):
    _, _, test = dataset_split
    engine = trained_model.stream_engine()
    fleet = [test[0]] * 4  # identical trips: all but the first ride the cache
    replay_fleet(engine, fleet, concurrency=4)
    assert engine.cache.misses <= len(set(test[0].segments))
    assert engine.cache.hits > 0
    assert 0.0 < engine.cache.hit_rate <= 1.0
    engine.invalidate_cache()
    assert len(engine.cache) == 0


# ------------------------------------------------------------------ timing
def test_timing_invariants_batched_path(trained_model, dataset_split):
    _, _, test = dataset_split
    engine = trained_model.stream_engine(record_timing=True)
    results = replay_fleet(engine, test[:6], concurrency=3)
    for trajectory, result in zip(test[:6], results):
        assert len(result.per_point_seconds) == len(trajectory)
        assert all(value >= 0.0 for value in result.per_point_seconds)
        assert result.total_seconds == pytest.approx(
            sum(result.per_point_seconds))
        assert result.total_seconds >= 0.0


def test_timing_invariants_single_stream_path(trained_model, dataset_split):
    _, _, test = dataset_split
    detector = trained_model.detector()
    for trajectory in test[:6]:
        result = detector.detect(trajectory, record_timing=True)
        assert len(result.per_point_seconds) == len(trajectory)
        assert all(value >= 0.0 for value in result.per_point_seconds)
        assert result.total_seconds == pytest.approx(
            sum(result.per_point_seconds))


def test_timing_off_by_default(trained_model, dataset_split):
    _, _, test = dataset_split
    engine = trained_model.stream_engine()
    (result,) = replay_fleet(engine, test[:1], concurrency=1)
    assert result.per_point_seconds == []
    assert result.total_seconds == 0.0


# ------------------------------------------------------------- error paths
def test_finalize_unknown_vehicle_raises(trained_model):
    engine = trained_model.stream_engine()
    with pytest.raises(ModelError):
        engine.finalize("ghost")


def test_finalize_closes_the_stream(trained_model, dataset_split):
    _, _, test = dataset_split
    trajectory = test[0]
    engine = trained_model.stream_engine()
    for position, segment in enumerate(trajectory.segments):
        engine.ingest("cab", segment,
                      destination=trajectory.destination if position == 0
                      else None)
    engine.finalize("cab")
    assert engine.active_vehicles == []
    with pytest.raises(ModelError):
        engine.finalize("cab")  # the stream is gone
    # The same vehicle id can immediately start a fresh trip.
    engine.ingest("cab", trajectory.segments[0])
    assert engine.pending_points("cab") == 1


def test_destination_mismatch_raises_and_stream_survives(trained_model,
                                                         dataset_split):
    _, _, test = dataset_split
    trajectory = next(t for t in test
                      if len(t) >= 4 and t.segments[1] != t.destination)
    engine = trained_model.stream_engine()
    engine.ingest("cab", trajectory.segments[0],
                  destination=trajectory.destination)
    engine.ingest("cab", trajectory.segments[1])
    # The trip currently ends somewhere other than the declared destination.
    with pytest.raises(ModelError):
        engine.finalize("cab")
    # The trip was simply not over: keep ingesting, then finalize cleanly.
    for segment in trajectory.segments[2:]:
        engine.ingest("cab", segment)
    assert_results_match(trained_model.detector().detect(trajectory),
                         engine.finalize("cab"))


def test_destination_mismatch_raises_in_deferred_mode(trained_model,
                                                      dataset_split):
    """The declared-destination contract holds even for history-less pairs."""
    _, _, test = dataset_split
    trajectory = test[0]
    engine = trained_model.stream_engine()
    # A destination no trip ever reached: the SD pair has no history, so the
    # stream runs deferred — the mismatch must still be rejected.
    bogus_destination = trajectory.segments[1]
    engine.ingest("cab", trajectory.segments[0], destination=bogus_destination)
    engine.ingest("cab", trajectory.segments[1])
    engine.ingest("cab", trajectory.segments[2])
    with pytest.raises(ModelError):
        engine.finalize("cab")
    assert engine.active_vehicles == ["cab"]  # the stream is still open


def test_finalize_many_rejects_duplicate_vehicles(trained_model,
                                                  dataset_split):
    _, _, test = dataset_split
    trajectory = test[0]
    engine = trained_model.stream_engine()
    for position, segment in enumerate(trajectory.segments):
        engine.ingest("cab", segment,
                      destination=trajectory.destination if position == 0
                      else None)
    with pytest.raises(ModelError):
        engine.finalize_many(["cab", "cab"])
    # The stream survives the rejected call and can still be finalized.
    result = engine.finalize("cab")
    assert len(result.labels) == len(trajectory)


def test_unknown_segment_rejected_at_ingest(trained_model, dataset_split):
    """A bad fix fails fast, per stream, without poisoning the fleet."""
    from repro.exceptions import LabelingError

    _, _, test = dataset_split
    trajectory = test[0]
    engine = trained_model.stream_engine()
    engine.ingest("good", trajectory.segments[0],
                  destination=trajectory.destination)
    with pytest.raises(LabelingError):
        engine.ingest("bad", 10 ** 9)  # never opens a stream
    with pytest.raises(LabelingError):
        engine.ingest("good", 10 ** 9)  # rejected before entering the stream
    assert engine.active_vehicles == ["good"]
    assert engine.pending_points("good") == 1
    # The healthy stream is unaffected and finishes normally.
    for segment in trajectory.segments[1:]:
        engine.ingest("good", segment)
    result = engine.finalize("good")
    assert result.labels == trained_model.detector().detect(trajectory).labels
    with pytest.raises(LabelingError):
        engine.ingest("late", trajectory.segments[0], destination=10 ** 9)


def test_replay_fleet_reattaches_original_trajectories(trained_model,
                                                       dataset_split):
    _, _, test = dataset_split
    engine = trained_model.stream_engine()
    results = replay_fleet(engine, test[:5], concurrency=3)
    for trajectory, result in zip(test[:5], results):
        assert result.trajectory is trajectory  # ground-truth labels survive


def test_replay_fleet_validates_concurrency(trained_model, dataset_split):
    _, _, test = dataset_split
    engine = trained_model.stream_engine()
    with pytest.raises(ModelError):
        replay_fleet(engine, test[:2], concurrency=0)


def test_slot_pool_grows_beyond_initial_capacity(trained_model, dataset_split):
    """More concurrent streams than the initial 64-slot state pool."""
    _, _, test = dataset_split
    detector = trained_model.detector()
    fleet = [test[i % len(test)] for i in range(80)]
    engine = trained_model.stream_engine()
    results = replay_fleet(engine, fleet, concurrency=80)
    for trajectory, result in zip(fleet, results):
        assert_results_match(detector.detect(trajectory), result)


# ------------------------------------------------------- small unit pieces
def test_segment_feature_cache_lru_eviction():
    cache = SegmentFeatureCache(max_size=2)
    make = lambda segment: SegmentRecord(segment, np.zeros(1), 1, 1)
    cache.get(1, make)
    cache.get(2, make)
    cache.get(1, make)  # refresh 1 so 2 is the eviction candidate
    cache.get(3, make)  # evicts 2
    assert cache.get(1, make).token == 1
    assert cache.hits == 2
    cache.get(2, make)  # recompute after eviction
    assert cache.misses == 4
    assert len(cache) == 2
    with pytest.raises(ModelError):
        SegmentFeatureCache(max_size=0)


def test_interleave_streams_round_robin_order(dataset_split):
    _, _, test = dataset_split
    fleet = test[:3]
    events = list(interleave_streams(fleet))
    assert len(events) == sum(len(t) for t in fleet)
    # The first round visits every stream once, in order.
    first_round = [index for index, _, _ in events[:len(fleet)]]
    assert first_round == [0, 1, 2]
    per_stream = {}
    for index, position, segment in events:
        assert position == per_stream.get(index, 0)
        per_stream[index] = position + 1
        assert fleet[index].segments[position] == segment


def test_interleave_streams_random_preserves_stream_order(dataset_split):
    _, _, test = dataset_split
    fleet = test[:4]
    rng = np.random.default_rng(9)
    per_stream = {}
    total = 0
    for index, position, segment in interleave_streams(fleet, rng):
        assert position == per_stream.get(index, 0)
        per_stream[index] = position + 1
        assert fleet[index].segments[position] == segment
        total += 1
    assert total == sum(len(t) for t in fleet)
    assert per_stream == {index: len(t) for index, t in enumerate(fleet)}


# ------------------------------------------------------------- weight swaps
def test_load_weights_swaps_under_active_streams(trained_model, dataset_split):
    """Reloading the engine's own weights mid-stream changes nothing; a
    mismatched snapshot is rejected atomically, leaving the engine intact."""
    _, _, test = dataset_split
    detector = trained_model.detector()
    trajectory = max(test, key=len)
    engine = trained_model.stream_engine()
    snapshot = {
        "rsrnet": trained_model.rsrnet.state_dict(),
        "asdnet": trained_model.asdnet.state_dict(),
    }
    midpoint = len(trajectory) // 2
    for position, segment in enumerate(trajectory.segments):
        if position == 0:
            engine.ingest("cab", segment,
                          destination=trajectory.destination,
                          start_time_s=trajectory.start_time_s)
        else:
            engine.ingest("cab", segment)
        engine.tick()
        if position == midpoint:
            with pytest.raises(ModelError):
                engine.load_weights({"bogus": np.zeros(2)},
                                    snapshot["asdnet"])
            # A same-weights swap is a no-op apart from the cache flush.
            engine.load_weights(snapshot["rsrnet"], snapshot["asdnet"])
            assert len(engine.cache) == 0
    assert_results_match(detector.detect(trajectory), engine.finalize("cab"))


def test_engine_lifetime_counters(trained_model, dataset_split):
    _, _, test = dataset_split
    engine = trained_model.stream_engine()
    fleet = test[:6]
    replay_fleet(engine, fleet, concurrency=3)
    assert engine.points_processed == sum(len(t) for t in fleet)
    assert engine.streams_finalized == len(fleet)
    assert 0 < engine.ticks <= engine.points_processed
    assert engine.total_pending_points() == 0
