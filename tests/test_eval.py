"""Tests of the evaluation metrics, grouping, timing and the runner."""

import pytest

from repro.eval import (
    LENGTH_BOUNDARIES,
    MetricsReport,
    evaluate_detector,
    evaluate_labelings,
    group_by_length,
    measure_detector,
    span_jaccard,
)
from repro.eval.grouping import group_of
from repro.exceptions import EvaluationError
from repro.trajectory import MatchedTrajectory


def make(tid, n, labels=None):
    return MatchedTrajectory(trajectory_id=tid, segments=list(range(100, 100 + n)),
                             labels=labels)


class ConstantDetector:
    """Predicts a fixed label pattern (all-normal by default)."""

    def __init__(self, value=0):
        self.value = value

    def detect(self, trajectory):
        class Result:
            labels = [self.value] * len(trajectory)
        if self.value == 0:
            Result.labels = [0] * len(trajectory)
        else:
            labels = [self.value] * len(trajectory)
            labels[0] = labels[-1] = 0
            Result.labels = labels
        return Result


class OracleDetector:
    def detect(self, trajectory):
        class Result:
            labels = list(trajectory.labels)
        return Result


# ------------------------------------------------------------------- metrics
def test_span_jaccard():
    assert span_jaccard((2, 5), (2, 5)) == 1.0
    assert span_jaccard((2, 5), (4, 7)) == pytest.approx(2 / 6)
    assert span_jaccard((0, 1), (5, 6)) == 0.0


def test_perfect_predictions_score_one():
    truth = [[0, 1, 1, 0], [0, 0, 1, 0, 0]]
    report = evaluate_labelings(truth, truth)
    assert report.f1 == 1.0
    assert report.t_f1 == 1.0
    assert report.precision == report.recall == 1.0
    assert report.num_ground_truth == report.num_detected == 2


def test_all_normal_predictions_score_zero():
    truth = [[0, 1, 1, 0]]
    predictions = [[0, 0, 0, 0]]
    report = evaluate_labelings(truth, predictions)
    assert report.f1 == 0.0
    assert report.recall == 0.0


def test_partial_overlap_scores_between():
    truth = [[0, 1, 1, 1, 1, 0]]
    predictions = [[0, 0, 1, 1, 1, 0]]
    report = evaluate_labelings(truth, predictions)
    assert 0.0 < report.f1 < 1.0
    assert report.t_f1 == 1.0  # Jaccard 0.75 > phi=0.5


def test_false_positive_lowers_precision():
    truth = [[0, 0, 0, 0, 0, 0]]
    predictions = [[0, 1, 1, 0, 0, 0]]
    report = evaluate_labelings(truth, predictions)
    assert report.precision == 0.0
    assert report.num_detected == 1
    assert report.num_ground_truth == 0


def test_multiple_spans_matched_one_to_one():
    truth = [[0, 1, 1, 0, 0, 1, 1, 0]]
    predictions = [[0, 1, 1, 1, 1, 1, 1, 0]]
    report = evaluate_labelings(truth, predictions)
    # One detected span covers both ground-truth spans but can only be matched
    # to one of them.
    assert report.recall < 1.0


def test_evaluate_labelings_validation():
    with pytest.raises(EvaluationError):
        evaluate_labelings([[0, 1]], [[0, 1], [0]])
    with pytest.raises(EvaluationError):
        evaluate_labelings([[0, 1]], [[0, 1, 0]])
    with pytest.raises(EvaluationError):
        evaluate_labelings([[0, 1]], [[0, 1]], phi=0.0)


def test_metrics_report_as_dict():
    report = evaluate_labelings([[0, 1, 0]], [[0, 1, 0]])
    data = report.as_dict()
    assert data["f1"] == 1.0
    assert isinstance(report, MetricsReport)


# ------------------------------------------------------------------ grouping
def test_group_of_boundaries():
    assert group_of(5) == "G1"
    assert group_of(15) == "G2"
    assert group_of(30) == "G3"
    assert group_of(45) == "G4"
    assert group_of(200) == "G4"


def test_group_by_length_partitions_everything():
    trajectories = [make(i, n) for i, n in enumerate([5, 16, 33, 50, 12])]
    groups = group_by_length(trajectories)
    assert sum(len(v) for v in groups.values()) == 5
    assert len(groups) == len(LENGTH_BOUNDARIES) + 1
    assert [t.trajectory_id for t in groups["G1"]] == [0, 4]


# -------------------------------------------------------------------- runner
def test_evaluate_detector_oracle_and_constant():
    test_set = [make(0, 8, [0, 1, 1, 0, 0, 0, 0, 0]),
                make(1, 20, [0] * 20),
                make(2, 35, [0, 0, 1, 1, 1] + [0] * 30)]
    oracle = evaluate_detector(OracleDetector(), test_set, name="oracle")
    assert oracle.overall.f1 == 1.0
    assert set(oracle.by_group) <= {"G1", "G2", "G3", "G4"}
    assert oracle.row()["overall_f1"] == 1.0

    constant = evaluate_detector(ConstantDetector(0), test_set, name="zero")
    assert constant.overall.f1 == 0.0


def test_evaluate_detector_validation():
    with pytest.raises(EvaluationError):
        evaluate_detector(OracleDetector(), [], name="x")
    unlabeled = [make(0, 5)]
    with pytest.raises(EvaluationError):
        evaluate_detector(OracleDetector(), unlabeled, name="x")

    class WrongLength:
        def detect(self, trajectory):
            class Result:
                labels = [0]
            return Result

    with pytest.raises(EvaluationError):
        evaluate_detector(WrongLength(), [make(0, 5, [0] * 5)], name="bad")


# -------------------------------------------------------------------- timing
def test_measure_detector_reports_latency():
    test_set = [make(i, 10, [0] * 10) for i in range(5)]
    report = measure_detector(OracleDetector(), test_set, name="oracle")
    assert report.detector_name == "oracle"
    assert len(report.per_trajectory_seconds) == 5
    assert report.mean_per_point_ms >= 0.0
    assert report.mean_per_trajectory_ms >= report.mean_per_point_ms
    assert report.as_dict()["detector"] == "oracle"


def test_measure_detector_requires_workload():
    with pytest.raises(EvaluationError):
        measure_detector(OracleDetector(), [], name="oracle")
