"""Tests of the road-segment representation learning (Toast substitute)."""

import numpy as np
import pytest

from repro.config import EmbeddingConfig
from repro.embeddings import (
    ToastEmbedder,
    generate_random_walks,
    train_skipgram,
    traffic_context_features,
)
from repro.embeddings.skipgram import SkipGramModel
from repro.exceptions import ModelError


def test_random_walks_follow_adjacency(line_network):
    walks = generate_random_walks(line_network, walks_per_node=2, walk_length=4)
    assert len(walks) == 2 * line_network.num_segments
    for walk in walks:
        for previous, current in zip(walk, walk[1:]):
            assert current in line_network.successor_segments(previous)


def test_random_walks_validation(line_network):
    with pytest.raises(ModelError):
        generate_random_walks(line_network, walks_per_node=0)


def test_skipgram_vocabulary_and_vectors():
    walks = [[1, 2, 3, 4], [2, 3, 4, 5], [1, 2, 3, 5]]
    model = train_skipgram(walks, dimension=8, epochs=1,
                           rng=np.random.default_rng(0))
    assert model.vocabulary_size == 5
    assert model.vector(3).shape == (8,)
    with pytest.raises(ModelError):
        model.vector(99)
    matrix = model.embedding_matrix([1, 2, 3])
    assert matrix.shape == (3, 8)


def test_skipgram_cooccurring_tokens_more_similar():
    """Tokens that always co-occur should be closer than tokens that never do."""
    rng = np.random.default_rng(1)
    walks = [[1, 2] * 6 for _ in range(40)] + [[3, 4] * 6 for _ in range(40)]
    model = train_skipgram(walks, dimension=12, epochs=3, rng=rng)

    def cos(a, b):
        va, vb = model.vector(a), model.vector(b)
        return float(va @ vb / (np.linalg.norm(va) * np.linalg.norm(vb)))

    assert cos(1, 2) > cos(1, 3)


def test_skipgram_rejects_empty():
    with pytest.raises(ModelError):
        train_skipgram([])
    with pytest.raises(ModelError):
        SkipGramModel([], 8)


def test_traffic_context_features_are_standardised(grid_network):
    ids = grid_network.segment_ids()
    features = traffic_context_features(grid_network, ids)
    assert features.shape == (len(ids), 6)
    assert np.allclose(features.mean(axis=0), 0.0, atol=1e-9)


def test_toast_embedder_shapes(grid_network):
    config = EmbeddingConfig(dimension=16, walks_per_node=1, walk_length=8,
                             epochs=1)
    embedder = ToastEmbedder(grid_network, config).fit()
    matrix = embedder.embedding_matrix()
    assert matrix.shape == (grid_network.num_segments, 16)
    assert embedder.is_fitted
    vector = embedder.vector(grid_network.segment_ids()[0])
    assert vector.shape == (16,)
    random = embedder.random_matrix(seed=1)
    assert random.shape == matrix.shape
    assert not np.allclose(random, matrix)


def test_toast_embedder_requires_fit(grid_network):
    embedder = ToastEmbedder(grid_network, EmbeddingConfig(dimension=8))
    with pytest.raises(ModelError):
        embedder.embedding_matrix()
    with pytest.raises(ModelError):
        embedder.vector(0)
