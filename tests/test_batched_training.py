"""Tests of the batched training engine.

The central contract: with ``batch_size=1`` the batched engine is numerically
equivalent to the sequential per-trajectory loop (same random stream, same
gradient steps, same final model), and with larger batch sizes it is a
well-behaved minibatch variant over ragged (padded + masked) trajectory
batches. The differential tests here mirror ``tests/test_stream_engine.py``,
which pins the batched *inference* engine the same way.
"""

import numpy as np
import pytest

from repro.config import (ASDNetConfig, LabelingConfig, RSRNetConfig,
                          TrainingConfig)
from repro.core import OnlineLearner, RL4OASDTrainer, TrainingReport
from repro.core.detector import rnel_from_degrees, rnel_from_degrees_batch
from repro.exceptions import ConfigurationError, ModelError
from repro.nn import (LSTM, cosine_similarity, cosine_similarity_rows,
                      cross_entropy_from_logits,
                      sequence_cross_entropy_from_logits)


# ------------------------------------------------------------ nn primitives
def test_lstm_batched_backward_matches_sequential(rng):
    """Batched BPTT over a ragged batch accumulates the same gradients as
    running (and summing) the per-sequence backward passes."""
    lstm = LSTM(input_dim=5, hidden_dim=4, rng=np.random.default_rng(1))
    lengths = [6, 3, 1, 5]
    batch, horizon = len(lengths), max(lengths)
    inputs = rng.normal(size=(batch, horizon, 5))
    grad_hidden = rng.normal(size=(batch, horizon, 4))
    for b, n in enumerate(lengths):  # padded positions carry no gradient
        inputs[b, n:] = 0.0
        grad_hidden[b, n:] = 0.0

    lstm.zero_grad()
    sequential_inputs_grad = np.zeros_like(inputs)
    sequential_hidden = []
    for b, n in enumerate(lengths):
        hidden, caches = lstm.forward(inputs[b, :n])
        sequential_hidden.append(hidden)
        sequential_inputs_grad[b, :n] = lstm.backward(grad_hidden[b, :n], caches)
    sequential_grads = [p.grad.copy() for p in lstm.parameters()]

    lstm.zero_grad()
    hidden_batch, caches = lstm.forward_batch(inputs)
    for b, n in enumerate(lengths):
        np.testing.assert_allclose(hidden_batch[b, :n], sequential_hidden[b],
                                   atol=1e-12)
    batched_inputs_grad = lstm.backward_batch(grad_hidden, caches)
    for sequential, parameter in zip(sequential_grads, lstm.parameters()):
        np.testing.assert_allclose(parameter.grad, sequential, atol=1e-10)
    np.testing.assert_allclose(batched_inputs_grad, sequential_inputs_grad,
                               atol=1e-10)


def test_sequence_cross_entropy_matches_per_sequence(rng):
    lengths = [4, 7, 1]
    batch, horizon, classes = len(lengths), max(lengths), 2
    logits = rng.normal(size=(batch, horizon, classes))
    targets = rng.integers(0, classes, size=(batch, horizon))
    losses, grad = sequence_cross_entropy_from_logits(logits, targets, lengths)
    for b, n in enumerate(lengths):
        loss_b, grad_b = cross_entropy_from_logits(logits[b, :n], targets[b, :n])
        assert losses[b] == pytest.approx(loss_b)
        np.testing.assert_allclose(grad[b, :n], grad_b / batch, atol=1e-12)
        assert np.all(grad[b, n:] == 0.0)


def test_sequence_cross_entropy_validates_shapes():
    logits = np.zeros((2, 3, 2))
    with pytest.raises(ModelError):
        sequence_cross_entropy_from_logits(logits, np.zeros((2, 2), int), [3, 3])
    with pytest.raises(ModelError):
        sequence_cross_entropy_from_logits(logits, np.zeros((2, 3), int), [3, 4])
    with pytest.raises(ModelError):
        sequence_cross_entropy_from_logits(logits, np.zeros((2, 3), int), [3, 0])


def test_cosine_similarity_rows_matches_scalar(rng):
    a = rng.normal(size=(5, 4))
    b = rng.normal(size=(5, 4))
    a[2] = 0.0  # zero vector -> similarity 0 by convention
    rows = cosine_similarity_rows(a, b)
    for i in range(5):
        assert rows[i] == pytest.approx(cosine_similarity(a[i], b[i]))


def test_rnel_from_degrees_batch_matches_scalar():
    out_degrees, in_degrees, previous = [], [], []
    for out_degree in (1, 2, 3):
        for in_degree in (1, 2, 3):
            for label in (0, 1):
                out_degrees.append(out_degree)
                in_degrees.append(in_degree)
                previous.append(label)
    batched = rnel_from_degrees_batch(out_degrees, in_degrees, previous)
    for index, decided in enumerate(batched):
        scalar = rnel_from_degrees(out_degrees[index], in_degrees[index],
                                   previous[index])
        assert (scalar if scalar is not None else -1) == decided


# ------------------------------------------------- differential equivalence
def _make_trainer(dataset, train, development, **training_overrides):
    overrides = dict(pretrain_trajectories=40, pretrain_epochs=2,
                     joint_trajectories=30, joint_epochs=1,
                     validation_interval=10, seed=7)
    overrides.update(training_overrides)
    return RL4OASDTrainer(
        dataset.network, train,
        labeling_config=LabelingConfig(alpha=0.35, delta=0.25),
        rsrnet_config=RSRNetConfig(embedding_dim=12, hidden_dim=12, nrf_dim=6,
                                   seed=5),
        asdnet_config=ASDNetConfig(label_embedding_dim=6, seed=6),
        training_config=TrainingConfig(**overrides),
        development_set=development[:10],
    )


def test_batched_engine_is_equivalent_at_batch_size_1(dataset, dataset_split):
    """The tentpole differential test: full training through the batched
    engine at batch size 1 yields the same model as the sequential loop."""
    train, development, test = dataset_split
    sequential = _make_trainer(dataset, train, development)
    sequential_model = sequential.train()
    batched = _make_trainer(dataset, train, development, batched=True)
    assert batched.uses_batched_training
    batched_model = batched.train()

    for name, value in sequential_model.rsrnet.state_dict().items():
        np.testing.assert_allclose(batched_model.rsrnet.state_dict()[name],
                                   value, atol=1e-8)
    for name, value in sequential_model.asdnet.state_dict().items():
        np.testing.assert_allclose(batched_model.asdnet.state_dict()[name],
                                   value, atol=1e-8)

    np.testing.assert_allclose(batched.report.pretrain_losses,
                               sequential.report.pretrain_losses, atol=1e-8)
    np.testing.assert_allclose(batched.report.joint_losses,
                               sequential.report.joint_losses, atol=1e-8)
    np.testing.assert_allclose(batched.report.episode_returns,
                               sequential.report.episode_returns, atol=1e-8)
    np.testing.assert_allclose(batched.report.validation_f1,
                               sequential.report.validation_f1, atol=1e-8)

    for trajectory in test[:20]:
        assert (batched_model.detector().detect(trajectory).labels
                == sequential_model.detector().detect(trajectory).labels)


def test_batched_fine_tune_is_equivalent_at_batch_size_1(dataset, dataset_split):
    train, development, _ = dataset_split
    sequential = _make_trainer(dataset, train[:120], development)
    sequential.train()
    batched = _make_trainer(dataset, train[:120], development, batched=True)
    batched.train()

    sequential.fine_tune(train[120:140], epochs=2)
    batched.fine_tune(train[120:140], epochs=2)
    for name, value in sequential.rsrnet.state_dict().items():
        np.testing.assert_allclose(batched.rsrnet.state_dict()[name], value,
                                   atol=1e-8)
    for name, value in sequential.asdnet.state_dict().items():
        np.testing.assert_allclose(batched.asdnet.state_dict()[name], value,
                                   atol=1e-8)
    np.testing.assert_allclose(batched.report.joint_losses,
                               sequential.report.joint_losses, atol=1e-8)


# ---------------------------------------------------------- larger batches
def test_batched_training_with_ragged_batches(dataset, dataset_split):
    """Batch size 8 over trajectories of different lengths yields a usable
    model and the same report structure as the sequential engine."""
    train, development, test = dataset_split
    lengths = {len(t) for t in train[:32]}
    assert len(lengths) > 1  # the batches really are ragged
    trainer = _make_trainer(dataset, train, development, batch_size=8)
    assert trainer.uses_batched_training
    model = trainer.train()
    report = trainer.report
    assert len(report.pretrain_losses) == 40 * 2
    assert len(report.joint_losses) == 30
    assert len(report.episode_returns) == 30
    assert report.validation_f1
    assert np.isfinite(report.best_validation_f1)
    for trajectory in test[:5]:
        labels = model.detector().detect(trajectory).labels
        assert len(labels) == len(trajectory)
        assert set(labels) <= {0, 1}
        assert labels[0] == 0 and labels[-1] == 0


@pytest.mark.parametrize("flag", ["use_rnel", "use_asdnet", "use_noisy_labels",
                                  "use_local_reward", "use_global_reward"])
def test_batched_training_ablations_run(dataset, dataset_split, flag):
    train, development, test = dataset_split
    trainer = _make_trainer(dataset, train, development,
                            batch_size=4, pretrain_trajectories=16,
                            joint_trajectories=8, **{flag: False})
    model = trainer.train()
    result = model.detector().detect(test[0])
    assert len(result.labels) == len(test[0])


def test_sequential_config_keeps_sequential_engine(dataset, dataset_split):
    train, development, _ = dataset_split
    trainer = _make_trainer(dataset, train, development)
    assert not trainer.uses_batched_training
    forced_off = _make_trainer(dataset, train, development, batch_size=8,
                               batched=False)
    assert not forced_off.uses_batched_training


def test_training_config_validates_batch_size():
    with pytest.raises(ConfigurationError):
        TrainingConfig(batch_size=0).validate()


def test_explicit_fine_tune_batch_size_overrides_engine_choice(
        dataset, dataset_split, monkeypatch):
    """Regression: fine_tune(batch_size=N>1) must use the batched engine even
    when the configuration forced the sequential loop (batched=False)."""
    train, development, _ = dataset_split
    trainer = _make_trainer(dataset, train[:60], development,
                            pretrain_trajectories=10, joint_trajectories=4,
                            batched=False)
    trainer.train()
    calls = []
    original = RL4OASDTrainer._run_episode_batch

    def spy(self, *args, **kwargs):
        calls.append(True)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(RL4OASDTrainer, "_run_episode_batch", spy)
    trainer.fine_tune(train[60:76], batch_size=8)
    assert calls  # the batched engine really ran


def test_fine_tune_rejects_invalid_batch_size(dataset, dataset_split):
    train, development, _ = dataset_split
    trainer = _make_trainer(dataset, train[:60], development)
    with pytest.raises(ModelError):
        trainer.fine_tune(train[60:70], batch_size=0)


# ----------------------------------------------------- reporting paths
def test_training_report_summary_contents():
    report = TrainingReport(
        pretrain_losses=[0.5, 0.4],
        joint_losses=[0.3, 0.2],
        episode_returns=[1.0, 3.0],
        best_validation_f1=0.75,
        pretrain_seconds=1.5,
        joint_seconds=2.5,
    )
    summary = report.summary()
    assert summary["pretrain_seconds"] == 1.5
    assert summary["joint_seconds"] == 2.5
    assert summary["final_joint_loss"] == 0.2
    assert summary["mean_episode_return"] == pytest.approx(2.0)
    assert summary["best_validation_f1"] == 0.75
    assert report.total_seconds == pytest.approx(4.0)


def test_training_report_summary_handles_empty_runs():
    summary = TrainingReport().summary()
    assert np.isnan(summary["final_joint_loss"])
    assert np.isnan(summary["mean_episode_return"])
    assert np.isnan(summary["best_validation_f1"])
    assert summary["pretrain_seconds"] == 0.0


class _RecordingTrainer:
    """A stub trainer that records how fine_tune was invoked."""

    def __init__(self):
        self.calls = []

    def train(self):
        return object()

    def fine_tune(self, trajectories, epochs=1, batch_size=None):
        self.calls.append((len(trajectories), epochs, batch_size))


def test_online_learner_training_time_by_part():
    trainer = _RecordingTrainer()
    learner = OnlineLearner(trainer, fine_tune_epochs=2, batch_size=16)
    learner.initial_fit()
    first = learner.observe_part(1, [object()] * 5)
    second = learner.observe_part(2, [object()] * 3)
    times = learner.training_time_by_part()
    assert set(times) == {1, 2}
    assert times[1] == first.seconds and times[2] == second.seconds
    assert all(seconds >= 0 for seconds in times.values())
    # The learner's batch size reaches the trainer on every round.
    assert trainer.calls == [(5, 2, 16), (3, 2, 16)]


def test_online_learner_default_keeps_trainer_signature():
    """Without a batch size the learner must not pass the keyword at all, so
    trainers with the pre-batching fine_tune signature keep working."""

    class LegacyTrainer:
        def __init__(self):
            self.calls = []

        def train(self):
            return object()

        def fine_tune(self, trajectories, epochs=1):  # no batch_size kwarg
            self.calls.append((len(trajectories), epochs))

    trainer = LegacyTrainer()
    learner = OnlineLearner(trainer)
    learner.initial_fit()
    learner.observe_part(1, [object()] * 4)
    assert trainer.calls == [(4, 1)]


def test_online_learner_validates_batch_size(dataset, dataset_split):
    train, _, _ = dataset_split
    trainer = RL4OASDTrainer(dataset.network, train[:40])
    with pytest.raises(ModelError):
        OnlineLearner(trainer, batch_size=0)


def test_online_learner_batched_fine_tuning_workflow(dataset, dataset_split):
    """End to end: a learner fine-tuning through the batched engine."""
    train, development, test = dataset_split
    trainer = _make_trainer(dataset, train[:120], development,
                            pretrain_trajectories=20, joint_trajectories=8)
    learner = OnlineLearner(trainer, batch_size=16)
    learner.initial_fit()
    record = learner.observe_part(1, train[120:150])
    assert record.num_trajectories == 30
    assert learner.training_time_by_part()[1] == record.seconds
    labels = learner.detector().detect(test[0]).labels
    assert len(labels) == len(test[0])


# --------------------------------------------- batched validation + bucketing
def test_validation_pass_matches_detector_scoring(dataset, dataset_split):
    """The StreamEngine-batched validation pass scores exactly like the old
    one-trajectory-at-a-time OnlineDetector pass (labels are pinned equal)."""
    from repro.eval.metrics import evaluate_labelings

    train, development, _ = dataset_split
    trainer = _make_trainer(dataset, train, development)
    trainer.train()
    config = trainer.training_config
    reference = development[:10][: config.validation_sample]
    detector = trainer.model().detector()
    expected = evaluate_labelings(
        [trajectory.labels for trajectory in reference],
        [detector.detect(trajectory).labels for trajectory in reference]).f1
    assert trainer._validation_f1() == pytest.approx(expected)


def test_training_chunks_bucket_by_length(dataset, dataset_split):
    """Bucketed assembly sorts batches by length (stably) and cuts padding;
    batch size 1 and the opt-out keep the sample order untouched."""
    train, development, _ = dataset_split
    sample = list(train[:17])

    bucketing = _make_trainer(dataset, train, development, batch_size=4)
    chunks = list(bucketing._training_chunks(sample, 4))
    flattened = [t for chunk in chunks for t in chunk]
    assert sorted(map(len, flattened)) == list(map(len, flattened))
    assert {t.trajectory_id for t in flattened} == {t.trajectory_id
                                                    for t in sample}
    # Stability: equal lengths keep their relative sample order.
    by_length = {}
    for trajectory in flattened:
        by_length.setdefault(len(trajectory), []).append(trajectory)
    positions = {id(t): i for i, t in enumerate(sample)}
    for group in by_length.values():
        indices = [positions[id(t)] for t in group]
        assert indices == sorted(indices)

    unbucketed = _make_trainer(dataset, train, development, batch_size=4,
                               bucket_by_length=False)
    assert [t for chunk in unbucketed._training_chunks(sample, 4)
            for t in chunk] == sample
    at_one = _make_trainer(dataset, train, development, batched=True)
    assert [t for chunk in at_one._training_chunks(sample, 1)
            for t in chunk] == sample


def test_bucketed_batches_reduce_padding_waste(dataset, dataset_split):
    """The padded-cell count over an epoch shrinks under bucketing."""
    train, development, _ = dataset_split
    trainer = _make_trainer(dataset, train, development, batch_size=8)
    sample = list(train[:64])

    def padded_cells(chunks):
        total = 0
        for chunk in chunks:
            lengths = [len(t) for t in chunk]
            total += max(lengths) * len(lengths) - sum(lengths)
        return total

    plain = padded_cells(_chunks_list(sample, 8))
    bucketed = padded_cells(trainer._training_chunks(sample, 8))
    assert bucketed <= plain
    assert bucketed < plain or plain == 0


def _chunks_list(items, size):
    return [items[start:start + size] for start in range(0, len(items), size)]


def test_bucketed_training_runs_end_to_end(dataset, dataset_split):
    train, development, test = dataset_split
    trainer = _make_trainer(dataset, train, development, batch_size=8,
                            pretrain_trajectories=24, joint_trajectories=16)
    model = trainer.train()
    trainer.fine_tune(train[150:166], epochs=1)
    result = model.detector().detect(test[0])
    assert len(result.labels) == len(test[0])
