"""Differential tests of the parallel (shard-placed) online matcher plane.

The acceptance bar for ``GatewayConfig(matcher_placement="shard")``: the
parallel-matched gateway is **label-identical** to the serial (facade)
gateway — and therefore, on clean fleets, to the offline pipeline — across
shard counts and both service backends. The facade keeps every
timestamp-driven decision (reorder, gap splits, timeouts, eviction) and the
per-shard matchers replay the exact serial matching semantics per session,
so placement must never change a label, a session split, or the merged
funnel counters. Around the pin: messy-input equivalence (duplicates,
out-of-order fixes, unmatchable fixes, gap splits), lattice-break
equivalence (the plane splits generations the facade never sees), merged
stats/latency reporting, and the plane plumbing's error paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GatewayConfig, MapMatchingConfig
from repro.datagen import sample_gps_trace
from repro.exceptions import ServiceError
from repro.ingest import (GpsGateway, MatcherPlaneFactory, MatchPush,
                          serve_raw_fleet)
from repro.mapmatching import HMMMapMatcher
from repro.trajectory import GPSPoint, RawTrajectory


@pytest.fixture(scope="module")
def offline_matcher(dataset):
    return HMMMapMatcher(dataset.network)


def clean_raws(dataset, trajectories, seed=0, noise=1.0):
    rng = np.random.default_rng(seed)
    return [sample_gps_trace(dataset.network, truth.segments,
                             truth.start_time_s, rng, gps_noise_m=noise,
                             trajectory_id=truth.trajectory_id)
            for truth in trajectories]


def run_placement(model, matcher, raws, placement, config=None,
                  concurrency=8, **service_kwargs):
    """One full raw-fleet replay under the given matcher placement."""
    config = config or {}
    gateway_config = GatewayConfig(matcher_placement=placement, **config)
    with model.detection_service(**service_kwargs) as service:
        gateway = GpsGateway(service, matcher, gateway_config)
        outputs = serve_raw_fleet(gateway, raws, concurrency=concurrency)
        stats = gateway.stats()
        latency = gateway.commit_latency()
        metrics = gateway.metrics()
    return outputs, stats, latency, metrics


def labels_of(outputs):
    return [[result.labels for result in sessions] for sessions in outputs]


FUNNEL = ("raw_points", "matched_points", "segments_emitted",
          "late_dropped", "duplicates_dropped", "unmatched_dropped",
          "sessions_opened", "sessions_closed", "sessions_dropped",
          "sessions_broken", "gap_splits", "commits", "forced_commits",
          "max_commit_lag")


def assert_same_funnel(serial_stats, shard_stats):
    """Placement must not change what the funnel measured, only where."""
    for name in FUNNEL:
        assert getattr(serial_stats, name) == getattr(shard_stats, name), name
    assert serial_stats.mean_commit_lag == \
        pytest.approx(shard_stats.mean_commit_lag)


# ----------------------------------------------------------- label identity
@pytest.mark.fleet
@pytest.mark.parametrize("num_shards,backend", [(1, "inprocess"),
                                                (3, "inprocess"),
                                                (2, "process")])
def test_shard_placement_is_label_identical_on_clean_fleets(
        trained_model, dataset, dataset_split, offline_matcher,
        num_shards, backend):
    """The tentpole pin: parallel-matched gateway == serial gateway, for any
    shard count and both backends, on clean fleets."""
    _, development, test = dataset_split
    fleet = (list(test) + list(development))[:10]
    raws = clean_raws(dataset, fleet, seed=num_shards + 50)
    serial, serial_stats, _, _ = run_placement(
        trained_model, offline_matcher, raws, "facade",
        config={"ingest_batch": 8}, num_shards=num_shards, backend=backend)
    shard, shard_stats, _, _ = run_placement(
        trained_model, offline_matcher, raws, "shard",
        config={"ingest_batch": 8}, num_shards=num_shards, backend=backend)
    assert labels_of(shard) == labels_of(serial)
    assert shard_stats.sessions_closed == len(fleet)
    assert shard_stats.dropped_points == 0
    assert_same_funnel(serial_stats, shard_stats)


def drive_point_streams(model, matcher, streams, starts, placement, config,
                        num_shards=2):
    """Push per-vehicle point lists verbatim (they may be out of order or
    duplicated, which :class:`RawTrajectory` would reject)."""
    gateway_config = GatewayConfig(matcher_placement=placement, **config)
    with model.detection_service(num_shards=num_shards) as service:
        gateway = GpsGateway(service, matcher, gateway_config)
        outputs = []
        for vehicle, points in enumerate(streams):
            sessions = []
            for position, point in enumerate(points):
                sessions.extend(gateway.push_point(
                    vehicle, point,
                    start_time_s=starts[vehicle] if position == 0 else None))
            sessions.extend(gateway.end(vehicle))
            outputs.append([s.result.labels for s in sessions])
        stats = gateway.stats()
    return outputs, stats


@pytest.mark.fleet
def test_shard_placement_is_label_identical_on_messy_input(
        trained_model, dataset, dataset_split, offline_matcher):
    """Duplicates, bounded out-of-order arrival, unmatchable fixes and
    gap splits: both placements repair/split/drop identically."""
    _, _, test = dataset_split
    raws = clean_raws(dataset, test[:6], seed=61)
    streams = []
    for raw in raws:
        points = list(raw.points)
        # Swap adjacent fixes (inside the reorder window).
        for i in range(0, len(points) - 1, 3):
            points[i], points[i + 1] = points[i + 1], points[i]
        # A duplicated fix and a fix nowhere near any road.
        points.insert(len(points) // 2, points[len(points) // 2])
        middle = points[len(points) // 3]
        points.insert(len(points) // 3 + 1,
                      GPSPoint(middle.x + 1e7, middle.y + 1e7,
                               middle.t + 0.5))
        # A long silence, splitting the trip in two.
        gap_at = (2 * len(points)) // 3
        points = points[:gap_at] + [
            GPSPoint(p.x, p.y, p.t + 900.0) for p in points[gap_at:]]
        streams.append(points)
    starts = [raw.start_time_s for raw in raws]
    config = {"reorder_window": 3, "session_gap_s": 300.0, "ingest_batch": 6}
    serial, serial_stats = drive_point_streams(
        trained_model, offline_matcher, streams, starts, "facade", config)
    shard, shard_stats = drive_point_streams(
        trained_model, offline_matcher, streams, starts, "shard", config)
    assert serial_stats.gap_splits == len(streams)
    assert serial_stats.duplicates_dropped == len(streams)
    assert serial_stats.unmatched_dropped >= len(streams)
    assert shard == serial
    assert_same_funnel(serial_stats, shard_stats)


@pytest.mark.fleet
@pytest.mark.parametrize("backend", ["inprocess", "process"])
def test_shard_placement_is_label_identical_through_lattice_breaks(
        trained_model, dataset, dataset_split, offline_matcher, backend):
    """A teleporting trace breaks the lattice mid-session. Serially the
    facade splits the session; in shard placement the plane splits it into
    generations the facade never sees — the results must still be
    identical, and so must the (merged) break accounting."""
    _, _, test = dataset_split
    # A tiny routing budget makes the teleport's candidates unreachable
    # (bounded Dijkstra gives up), forcing MatchBreakError instead of a
    # long bridged route.
    matcher = HMMMapMatcher(dataset.network,
                            MapMatchingConfig(routing_max_hops=3))
    raws = clean_raws(dataset, test[:4], seed=62)
    teleported = []
    for raw, partner in zip(raws, reversed(raws)):
        points = list(raw.points)
        half = len(points) // 2
        # Jump to the partner trip's route, timestamps kept in-session.
        graft = [GPSPoint(p.x, p.y, points[half - 1].t + 1.0 + i)
                 for i, p in enumerate(partner.points[:half])]
        teleported.append(RawTrajectory(raw.trajectory_id,
                                        points[:half] + graft,
                                        start_time_s=raw.start_time_s))
    serial, serial_stats, _, _ = run_placement(
        trained_model, matcher, teleported, "facade",
        config={"ingest_batch": 4}, num_shards=2, backend=backend)
    shard, shard_stats, _, _ = run_placement(
        trained_model, matcher, teleported, "shard",
        config={"ingest_batch": 4}, num_shards=2, backend=backend)
    assert serial_stats.sessions_broken > 0  # the scenario actually bites
    assert labels_of(shard) == labels_of(serial)
    assert_same_funnel(serial_stats, shard_stats)


# ------------------------------------------------------- merged observability
@pytest.mark.fleet
@pytest.mark.parametrize("backend", ["inprocess", "process"])
def test_shard_placement_merges_stats_and_latency(
        trained_model, dataset, dataset_split, offline_matcher, backend):
    """Commit statistics and the latency reservoir live on the shard
    matchers; the gateway's merged view must equal the serial one."""
    _, _, test = dataset_split
    raws = clean_raws(dataset, test[:6], seed=63)
    _, serial_stats, serial_latency, _ = run_placement(
        trained_model, offline_matcher, raws, "facade",
        config={"ingest_batch": 8}, num_shards=2, backend=backend)
    _, shard_stats, shard_latency, shard_metrics = run_placement(
        trained_model, offline_matcher, raws, "shard",
        config={"ingest_batch": 8}, num_shards=2, backend=backend)
    assert shard_latency.count == serial_latency.count
    assert sorted(shard_latency.samples) == sorted(serial_latency.samples)
    assert shard_stats.commits == serial_stats.commits
    assert shard_stats.mean_commit_lag == \
        pytest.approx(serial_stats.mean_commit_lag)
    # The fleet dashboard carries one matcher snapshot per shard.
    assert len(shard_metrics.matchers) == 2
    assert sum(m.matched_points for m in shard_metrics.matchers) == \
        shard_stats.matched_points
    assert sum(m.live_sessions for m in shard_metrics.matchers) == 0
    assert all(m.as_dict()["shard_id"] == i
               for i, m in enumerate(shard_metrics.matchers))
    assert "matcher[0]" in shard_metrics.format()


# ----------------------------------------------------------- plane plumbing
def test_plane_install_is_single_shot(trained_model, offline_matcher):
    """Two gateways cannot share one service's shards; a plane-less service
    refuses plane traffic outright."""
    config = GatewayConfig(matcher_placement="shard")
    with trained_model.detection_service(num_shards=2) as service:
        GpsGateway(service, offline_matcher, config)
        assert service.plane_installed
        with pytest.raises(ServiceError):
            GpsGateway(service, offline_matcher, config)
    with trained_model.detection_service(num_shards=1) as service:
        assert not service.plane_installed
        with pytest.raises(ServiceError):
            service.plane_send_many(0, [MatchPush(("cab", 0),
                                                  GPSPoint(0.0, 0.0, 0.0))])
        with pytest.raises(ServiceError):
            service.plane_stats()


def test_matcher_plane_factory_pickles_without_shared_state(offline_matcher):
    """Workers rebuild their own matcher: the pickled factory drops the
    in-process shared HMM matcher but keeps network and config."""
    import pickle

    factory = MatcherPlaneFactory(offline_matcher, max_pending=7)
    rebuilt = pickle.loads(pickle.dumps(factory))
    assert rebuilt._shared is None
    assert factory._shared is offline_matcher

    class _FakeEngine:
        def ingest(self, *args, **kwargs):
            raise AssertionError("no segment should be forwarded here")

    plane = rebuilt(0, _FakeEngine())
    assert plane.matcher.max_pending == 7
    assert plane.matcher.matcher is not offline_matcher
    shared = factory(1, _FakeEngine())
    assert shared.matcher.matcher is offline_matcher
    with pytest.raises(TypeError):
        plane.handle(("not", "a", "plane", "command"))
    with pytest.raises(TypeError):
        plane.request(("nor", "a", "request"))


# ------------------------------------------------------------ async sessions
@pytest.mark.fleet
@pytest.mark.parametrize("placement,num_shards,backend", [
    ("facade", 1, "inprocess"),
    ("facade", 2, "process"),
    ("shard", 3, "inprocess"),
    ("shard", 2, "process")])
def test_async_sessions_label_and_funnel_identical(
        trained_model, dataset, dataset_split, offline_matcher,
        placement, num_shards, backend):
    """Satellite pin: ``GatewayConfig(async_sessions=True)`` — session
    closes through the results bus instead of blocking finalize /
    plane_request round trips — is label- and funnel-identical to the
    synchronous close path, for both matcher placements, shard counts and
    backends."""
    _, development, test = dataset_split
    fleet = (list(test) + list(development))[:8]
    raws = clean_raws(dataset, fleet, seed=num_shards + 80)
    sync_out, sync_stats, _, _ = run_placement(
        trained_model, offline_matcher, raws, placement,
        config={"ingest_batch": 8}, num_shards=num_shards, backend=backend)
    async_out, async_stats, _, async_metrics = run_placement(
        trained_model, offline_matcher, raws, placement,
        config={"ingest_batch": 8, "async_sessions": True},
        num_shards=num_shards, backend=backend)
    assert labels_of(async_out) == labels_of(sync_out)
    assert_same_funnel(sync_stats, async_stats)
    assert async_stats.sessions_closed == len(fleet)
    assert async_metrics.results_pending == 0
    assert async_metrics.results_duplicates == 0
