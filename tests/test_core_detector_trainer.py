"""Tests of the online detector (Algorithm 1), the RNEL/DL enhancements, the
joint trainer and the online-learning wrapper."""

import numpy as np
import pytest

from repro.config import ASDNetConfig, LabelingConfig, RSRNetConfig, TrainingConfig
from repro.core import OnlineDetector, OnlineLearner, RL4OASDTrainer
from repro.core.detector import (apply_delayed_labeling, apply_rnel,
                                 rnel_from_degrees)
from repro.eval import evaluate_detector
from repro.exceptions import ModelError, NotFittedError
from repro.roadnet import RoadNetwork


# ---------------------------------------------------------------------- RNEL
def test_rnel_rules(line_network):
    # Segment 1 (n1->n2): its predecessor 0 has out-degree 2, successor chain.
    # Rule 1: single-out + single-in copies the previous label.
    # line_network: segment 3 (n1->n4) out=1 (only 4 follows), segment 4 in=1.
    assert apply_rnel(line_network, 3, 4, previous_label=0) == 0
    assert apply_rnel(line_network, 3, 4, previous_label=1) == 1
    # Rule 2: single-out, multi-in, previous normal -> normal.
    # segment 4 (n4->n2) out=1 (only 2 follows), segment 2 (n2->n3) in=2.
    assert apply_rnel(line_network, 4, 2, previous_label=0) == 0
    # Rule 3 requires multi-out + single-in + previous anomalous.
    assert apply_rnel(line_network, 0, 3, previous_label=1) == 1
    # Otherwise (multi-out, single-in but previous normal) the policy decides.
    assert apply_rnel(line_network, 0, 1, previous_label=0) is None


def test_rnel_on_pure_degree_one_chain():
    """Along a chain with no branches, RNEL always copies the previous label."""
    network = RoadNetwork()
    for node_id in range(4):
        network.add_intersection(node_id, 100.0 * node_id, 0.0)
    network.add_segment(0, 0, 1)
    network.add_segment(1, 1, 2)
    network.add_segment(2, 2, 3)
    for previous_segment, current_segment in ((0, 1), (1, 2)):
        assert network.out_degree(previous_segment) == 1
        assert network.in_degree(current_segment) == 1
        for label in (0, 1):
            assert apply_rnel(network, previous_segment, current_segment,
                              previous_label=label) == label


def test_rnel_from_degrees_rule_table():
    # Rule 1: 1-out into 1-in copies the previous label.
    assert rnel_from_degrees(1, 1, 0) == 0
    assert rnel_from_degrees(1, 1, 1) == 1
    # Rule 2: 1-out into multi-in keeps a normal label normal.
    assert rnel_from_degrees(1, 3, 0) == 0
    assert rnel_from_degrees(1, 3, 1) is None
    # Rule 3: multi-out into 1-in keeps an anomalous label anomalous.
    assert rnel_from_degrees(3, 1, 1) == 1
    assert rnel_from_degrees(3, 1, 0) is None
    # Multi-out into multi-in: always the policy's call.
    assert rnel_from_degrees(2, 2, 0) is None
    assert rnel_from_degrees(2, 2, 1) is None


# ----------------------------------------------------------- delayed labeling
def test_delayed_labeling_merges_nearby_fragments():
    labels = [0, 1, 1, 0, 0, 1, 0, 0]
    assert apply_delayed_labeling(labels, window=4) == [0, 1, 1, 1, 1, 1, 0, 0]


def test_delayed_labeling_respects_window():
    labels = [0, 1, 0, 0, 0, 0, 1, 0]
    assert apply_delayed_labeling(labels, window=2) == labels


def test_delayed_labeling_noop_cases():
    assert apply_delayed_labeling([0, 0, 0], window=8) == [0, 0, 0]
    assert apply_delayed_labeling([1, 1], window=0) == [1, 1]
    with pytest.raises(ModelError):
        apply_delayed_labeling([0, 1], window=-1)


def test_delayed_labeling_does_not_extend_past_last_fragment():
    labels = [1, 0, 0, 0, 0, 0, 0, 0]
    assert apply_delayed_labeling(labels, window=3) == labels


def test_delayed_labeling_window_zero_is_identity():
    for labels in ([0, 1, 0, 1, 0], [1, 0, 1], [0, 0, 0, 0], [1, 1, 1, 1]):
        assert apply_delayed_labeling(labels, window=0) == labels


def test_delayed_labeling_trailing_anomalous_run_is_kept():
    # A run still open at the end of the trajectory must survive untouched.
    assert apply_delayed_labeling([0, 0, 1, 1], window=8) == [0, 0, 1, 1]
    # ... and an earlier fragment merges into it across a short gap.
    assert apply_delayed_labeling([0, 1, 0, 0, 1, 1], window=8) == \
        [0, 1, 1, 1, 1, 1]


def test_delayed_labeling_gap_exactly_window_boundary():
    # A fragment `gap` zeros after a run rejoins it iff gap < window: the next
    # anomalous label sits at `end + gap + 1`, and the scan stops at
    # `end + window`.
    gap_three = [0, 1, 0, 0, 0, 1, 0]
    assert apply_delayed_labeling(gap_three, window=3) == gap_three
    gap_two = [0, 1, 0, 0, 1, 0]
    assert apply_delayed_labeling(gap_two, window=3) == [0, 1, 1, 1, 1, 0]


# ------------------------------------------------------------------ detector
def test_detector_output_structure(trained_model, dataset_split):
    _, _, test = dataset_split
    detector = trained_model.detector()
    result = detector.detect(test[0], record_timing=True)
    assert len(result.labels) == len(test[0])
    assert set(result.labels) <= {0, 1}
    assert result.labels[0] == 0 and result.labels[-1] == 0
    assert len(result.per_point_seconds) == len(test[0])
    assert result.total_seconds >= 0
    spans = result.spans
    assert all(a <= b for a, b in spans)
    assert len(result.subtrajectories) == len(spans)


def test_detector_is_deterministic_in_greedy_mode(trained_model, dataset_split):
    _, _, test = dataset_split
    detector = trained_model.detector(greedy=True)
    first = detector.detect(test[1]).labels
    second = detector.detect(test[1]).labels
    assert first == second


def test_detector_detect_many(trained_model, dataset_split):
    _, _, test = dataset_split
    results = trained_model.detector().detect_many(test[:5])
    assert len(results) == 5


def test_detector_quality_on_test_set(trained_model, dataset_split):
    """The trained detector clearly beats chance on the held-out data.

    The tiny test split contains very few anomalous subtrajectories, so the
    development and test portions are pooled to get a stable estimate.
    """
    _, development, test = dataset_split
    run = evaluate_detector(trained_model.detector(), development + test,
                            name="RL4OASD")
    assert run.overall.recall > 0.4
    assert run.overall.f1 > 0.2


def test_detector_per_point_latency_is_online(trained_model, dataset_split):
    _, _, test = dataset_split
    detector = trained_model.detector()
    result = detector.detect(max(test, key=len), record_timing=True)
    mean_ms = 1000.0 * np.mean(result.per_point_seconds)
    assert mean_ms < 50.0


# ------------------------------------------------------------------- trainer
def test_trainer_requires_history(dataset):
    with pytest.raises(ModelError):
        RL4OASDTrainer(dataset.network, [])


def test_trainer_model_requires_training(dataset, dataset_split):
    train, _, _ = dataset_split
    trainer = RL4OASDTrainer(dataset.network, train[:40])
    with pytest.raises(NotFittedError):
        trainer.model()


def test_trainer_report_contents(trained_model):
    report = trained_model.report
    assert report.pretrain_losses
    assert report.pretrain_seconds > 0
    assert report.validation_f1
    assert not np.isnan(report.best_validation_f1)
    summary = report.summary()
    assert "pretrain_seconds" in summary


def test_trainer_ablation_flags_run(dataset, dataset_split):
    """Every ablation switch produces a usable (if weaker) model."""
    train, development, test = dataset_split
    quick = dict(pretrain_trajectories=40, pretrain_epochs=2,
                 joint_trajectories=20, joint_epochs=1, validation_interval=20)
    for flag in ("use_asdnet", "use_rnel", "use_delayed_labeling",
                 "use_noisy_labels"):
        trainer = RL4OASDTrainer(
            dataset.network, train,
            labeling_config=LabelingConfig(alpha=0.35, delta=0.25),
            rsrnet_config=RSRNetConfig(embedding_dim=12, hidden_dim=12, nrf_dim=6),
            asdnet_config=ASDNetConfig(label_embedding_dim=6),
            training_config=TrainingConfig(**quick, **{flag: False}),
            development_set=development[:10],
        )
        model = trainer.train()
        result = model.detector().detect(test[0])
        assert len(result.labels) == len(test[0])


def test_fine_tune_extends_history(dataset, dataset_split):
    train, development, test = dataset_split
    trainer = RL4OASDTrainer(
        dataset.network, train[:120],
        labeling_config=LabelingConfig(alpha=0.35, delta=0.25),
        rsrnet_config=RSRNetConfig(embedding_dim=12, hidden_dim=12, nrf_dim=6),
        asdnet_config=ASDNetConfig(label_embedding_dim=6),
        training_config=TrainingConfig(pretrain_trajectories=40, pretrain_epochs=2,
                                       joint_trajectories=20, joint_epochs=1,
                                       validation_interval=20),
        development_set=development[:10],
    )
    trainer.train()
    before = len(trainer.pipeline.sd_index)
    trainer.fine_tune(train[120:140], epochs=1)
    assert len(trainer.pipeline.sd_index) == before + 20
    trainer.fine_tune([])  # no-op


# ------------------------------------------------------------- online learner
def test_online_learner_workflow(dataset, dataset_split):
    train, development, test = dataset_split
    trainer = RL4OASDTrainer(
        dataset.network, train[:120],
        labeling_config=LabelingConfig(alpha=0.35, delta=0.25),
        rsrnet_config=RSRNetConfig(embedding_dim=12, hidden_dim=12, nrf_dim=6),
        asdnet_config=ASDNetConfig(label_embedding_dim=6),
        training_config=TrainingConfig(pretrain_trajectories=40, pretrain_epochs=2,
                                       joint_trajectories=20, joint_epochs=1,
                                       validation_interval=20),
        development_set=development[:10],
    )
    learner = OnlineLearner(trainer)
    with pytest.raises(ModelError):
        learner.detector()
    with pytest.raises(ModelError):
        learner.observe_part(1, train[120:130])
    learner.initial_fit()
    record = learner.observe_part(1, train[120:140])
    assert record.num_trajectories == 20
    assert record.seconds > 0
    assert learner.training_time_by_part()[1] == record.seconds
    detector = learner.detector()
    assert len(detector.detect(test[0]).labels) == len(test[0])


def test_online_learner_validates_epochs(dataset, dataset_split):
    train, _, _ = dataset_split
    trainer = RL4OASDTrainer(dataset.network, train[:50])
    with pytest.raises(ModelError):
        OnlineLearner(trainer, fine_tune_epochs=0)


class _StubModel:
    def __init__(self, name):
        self.name = name

    def detector(self, greedy=True, seed=0):
        return ("detector", self.name, greedy, seed)


class _StubTrainer:
    """A trainer whose model() disagrees with what train() returned."""

    def __init__(self):
        self.initial = _StubModel("initial")
        self.retrained = _StubModel("retrained")

    def train(self):
        return self.initial

    def model(self):
        return self.retrained

    def fine_tune(self, trajectories, epochs=1):
        pass


def test_online_learner_serves_the_stored_model():
    """Regression: detector() must come from the model initial_fit() stored,
    not from whatever the wrapped trainer currently holds."""
    learner = OnlineLearner(_StubTrainer())
    learner.initial_fit()
    assert learner.detector(greedy=False, seed=3) == \
        ("detector", "initial", False, 3)
