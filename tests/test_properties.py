"""Property-based tests (hypothesis) of the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.detector import apply_delayed_labeling
from repro.eval.metrics import evaluate_labelings, span_jaccard
from repro.nn import softmax, log_softmax, sigmoid, cosine_similarity
from repro.trajectory.ops import labels_from_spans, subtrajectory_spans
from repro.trajectory.similarity import (
    discrete_frechet_points,
    edit_distance_routes,
    jaccard_similarity,
)

label_lists = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=40)
routes = st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=25)


@given(label_lists)
def test_spans_round_trip(labels):
    """labels -> spans -> labels is the identity."""
    spans = subtrajectory_spans(labels)
    assert labels_from_spans(len(labels), spans) == labels
    # Spans are disjoint, ordered and within range.
    for (a1, b1), (a2, b2) in zip(spans, spans[1:]):
        assert b1 + 1 < a2
    for a, b in spans:
        assert 0 <= a <= b < len(labels)


@given(label_lists, st.integers(min_value=0, max_value=10))
def test_delayed_labeling_only_adds_ones(labels, window):
    merged = apply_delayed_labeling(labels, window)
    assert len(merged) == len(labels)
    for original, new in zip(labels, merged):
        if original == 1:
            assert new == 1
    # The number of anomalous spans never increases.
    assert len(subtrajectory_spans(merged)) <= len(subtrajectory_spans(labels))


@given(label_lists)
def test_perfect_prediction_always_scores_perfectly(labels):
    report = evaluate_labelings([labels], [labels])
    if subtrajectory_spans(labels):
        assert report.f1 == 1.0
    else:
        assert report.num_ground_truth == 0


@given(label_lists, label_lists)
def test_metrics_are_bounded(truth, prediction):
    n = min(len(truth), len(prediction))
    report = evaluate_labelings([truth[:n]], [prediction[:n]])
    assert 0.0 <= report.precision <= 1.0
    assert 0.0 <= report.recall <= 1.0
    assert 0.0 <= report.f1 <= 1.0
    assert 0.0 <= report.t_f1 <= 1.0


@given(st.tuples(st.integers(0, 30), st.integers(0, 30)),
       st.tuples(st.integers(0, 30), st.integers(0, 30)))
def test_span_jaccard_symmetric_and_bounded(a, b):
    a = (min(a), max(a))
    b = (min(b), max(b))
    value = span_jaccard(a, b)
    assert 0.0 <= value <= 1.0
    assert value == span_jaccard(b, a)
    assert span_jaccard(a, a) == 1.0


@given(routes, routes)
def test_route_similarity_properties(route_a, route_b):
    assert jaccard_similarity(route_a, route_a) == 1.0
    assert 0.0 <= jaccard_similarity(route_a, route_b) <= 1.0
    assert jaccard_similarity(route_a, route_b) == jaccard_similarity(route_b, route_a)
    assert edit_distance_routes(route_a, route_a) == 0
    assert edit_distance_routes(route_a, route_b) == edit_distance_routes(route_b, route_a)
    assert edit_distance_routes(route_a, route_b) <= max(len(route_a), len(route_b))


@settings(max_examples=30)
@given(st.lists(st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
                min_size=1, max_size=12),
       st.lists(st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
                min_size=1, max_size=12))
def test_frechet_properties(points_a, points_b):
    a = np.array(points_a, dtype=float)
    b = np.array(points_b, dtype=float)
    d_ab = discrete_frechet_points(a, b)
    assert d_ab >= 0.0
    assert discrete_frechet_points(a, a) == 0.0
    assert d_ab == discrete_frechet_points(b, a)


@settings(max_examples=50)
@given(st.lists(st.floats(-30, 30), min_size=1, max_size=16))
def test_softmax_properties(values):
    logits = np.array(values, dtype=float)
    probs = softmax(logits)
    assert np.isclose(probs.sum(), 1.0)
    assert np.all(probs >= 0.0)
    assert np.allclose(np.exp(log_softmax(logits)), probs)
    # Softmax is order preserving: the most likely class is (one of) the
    # largest logits. Compare values rather than indices to tolerate ties that
    # only appear after rounding.
    assert probs[int(np.argmax(logits))] == pytest.approx(float(probs.max()))


@settings(max_examples=50)
@given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=20))
def test_sigmoid_bounded_and_monotone(values):
    x = np.sort(np.array(values, dtype=float))
    s = sigmoid(x)
    assert np.all((s >= 0.0) & (s <= 1.0))
    assert np.all(np.diff(s) >= -1e-12)


@settings(max_examples=50)
@given(st.lists(st.floats(-10, 10), min_size=2, max_size=16),
       st.lists(st.floats(-10, 10), min_size=2, max_size=16))
def test_cosine_similarity_bounded(a, b):
    n = min(len(a), len(b))
    value = cosine_similarity(np.array(a[:n]), np.array(b[:n]))
    assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9
