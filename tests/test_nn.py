"""Tests of the numpy neural-network substrate, including gradient checks."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.nn import (
    Adam,
    Embedding,
    GRU,
    Linear,
    LSTM,
    SGD,
    binary_cross_entropy,
    clip_gradients,
    cosine_similarity,
    cross_entropy_from_logits,
    log_softmax,
    one_hot,
    sigmoid,
    softmax,
)
from repro.nn.module import Module, Parameter


# ----------------------------------------------------------------- functional
def test_sigmoid_and_tanh_ranges():
    x = np.linspace(-50, 50, 101)
    s = sigmoid(x)
    assert np.all((s >= 0) & (s <= 1))
    assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)


def test_softmax_sums_to_one():
    probs = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 1000.0]]), axis=1)
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert probs[1, 2] == pytest.approx(1.0)


def test_log_softmax_matches_softmax():
    logits = np.array([0.3, -2.0, 1.5])
    assert np.allclose(np.exp(log_softmax(logits)), softmax(logits))


def test_one_hot():
    vec = one_hot(2, 4)
    assert vec.tolist() == [0, 0, 1, 0]
    with pytest.raises(ModelError):
        one_hot(5, 4)


def test_cosine_similarity():
    assert cosine_similarity(np.ones(4), np.ones(4)) == pytest.approx(1.0)
    assert cosine_similarity(np.array([1, 0]), np.array([0, 1])) == pytest.approx(0.0)
    assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0
    with pytest.raises(ModelError):
        cosine_similarity(np.ones(3), np.ones(4))


def test_cross_entropy_from_logits_values_and_grad():
    logits = np.array([[2.0, 0.0], [0.0, 2.0]])
    loss, grad = cross_entropy_from_logits(logits, [0, 1])
    assert loss == pytest.approx(-np.log(softmax(np.array([2.0, 0.0]))[0]))
    assert grad.shape == logits.shape
    # Gradient pushes probability mass toward the target class.
    assert grad[0, 0] < 0 and grad[0, 1] > 0


def test_cross_entropy_rejects_bad_targets():
    with pytest.raises(ModelError):
        cross_entropy_from_logits(np.zeros((2, 2)), [0])
    with pytest.raises(ModelError):
        cross_entropy_from_logits(np.zeros((2, 2)), [0, 5])


def test_binary_cross_entropy():
    assert binary_cross_entropy(np.array([0.9, 0.1]), np.array([1.0, 0.0])) < 0.2
    with pytest.raises(ModelError):
        binary_cross_entropy(np.array([0.5]), np.array([0.5, 0.5]))


# -------------------------------------------------------------------- module
def test_module_collects_parameters_recursively():
    class Child(Module):
        def __init__(self):
            super().__init__()
            self.w = Parameter(np.zeros((2, 2)), name="w")

    class Parent(Module):
        def __init__(self):
            super().__init__()
            self.child = Child()
            self.b = Parameter(np.zeros(3), name="b")

    parent = Parent()
    assert len(parent.parameters()) == 2
    names = dict(parent.named_parameters())
    assert "child.w" in names and "b" in names
    assert parent.num_parameters() == 7


def test_state_dict_round_trip():
    layer = Linear(3, 2, rng=np.random.default_rng(0))
    state = layer.state_dict()
    other = Linear(3, 2, rng=np.random.default_rng(99))
    other.load_state_dict(state)
    assert np.allclose(other.weight.value, layer.weight.value)
    with pytest.raises(ModelError):
        other.load_state_dict({"weight": np.zeros((3, 2))})


# ------------------------------------------------------------ gradient checks
def numerical_gradient(f, parameter, eps=1e-5):
    grad = np.zeros_like(parameter.value)
    it = np.nditer(parameter.value, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        original = parameter.value[index]
        parameter.value[index] = original + eps
        plus = f()
        parameter.value[index] = original - eps
        minus = f()
        parameter.value[index] = original
        grad[index] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def test_linear_gradient_check():
    rng = np.random.default_rng(1)
    layer = Linear(4, 3, rng=rng)
    x = rng.normal(size=4)
    targets = [1]

    def loss_fn():
        out, _ = layer(x)
        loss, _ = cross_entropy_from_logits(out, targets)
        return loss

    layer.zero_grad()
    out, cache = layer(x)
    _, grad_logits = cross_entropy_from_logits(out, targets)
    layer.backward(grad_logits[0], cache)
    numeric = numerical_gradient(loss_fn, layer.weight)
    assert np.allclose(layer.weight.grad, numeric, atol=1e-5)


def test_embedding_gradient_accumulates_per_token():
    rng = np.random.default_rng(2)
    embedding = Embedding(5, 3, rng=rng)
    out, cache = embedding([1, 1, 4])
    grad = np.ones_like(out)
    embedding.backward(grad, cache)
    assert np.allclose(embedding.weight.grad[1], 2.0)
    assert np.allclose(embedding.weight.grad[4], 1.0)
    assert np.allclose(embedding.weight.grad[0], 0.0)
    with pytest.raises(ModelError):
        embedding([9])


def test_lstm_gradient_check():
    rng = np.random.default_rng(3)
    lstm = LSTM(3, 4, rng=rng)
    inputs = rng.normal(size=(5, 3))
    targets = np.array([0.7, -0.3, 0.2, 0.5])

    def loss_fn():
        hidden, _ = lstm.forward(inputs)
        return float(((hidden[-1] - targets) ** 2).sum())

    hidden, caches = lstm.forward(inputs)
    grad_hidden = np.zeros_like(hidden)
    grad_hidden[-1] = 2.0 * (hidden[-1] - targets)
    lstm.zero_grad()
    lstm.backward(grad_hidden, caches)
    numeric = numerical_gradient(loss_fn, lstm.cell.weight_input)
    assert np.allclose(lstm.cell.weight_input.grad, numeric, atol=1e-4)


def test_gru_gradient_check():
    rng = np.random.default_rng(4)
    gru = GRU(3, 4, rng=rng)
    inputs = rng.normal(size=(4, 3))
    targets = np.array([0.1, 0.2, -0.4, 0.3])

    def loss_fn():
        hidden, _ = gru.forward(inputs)
        return float(((hidden[-1] - targets) ** 2).sum())

    hidden, caches = gru.forward(inputs)
    grad_hidden = np.zeros_like(hidden)
    grad_hidden[-1] = 2.0 * (hidden[-1] - targets)
    gru.zero_grad()
    gru.backward(grad_hidden, caches)
    numeric = numerical_gradient(loss_fn, gru.cell.weight_hidden)
    assert np.allclose(gru.cell.weight_hidden.grad, numeric, atol=1e-4)


def test_lstm_rejects_wrong_shapes():
    lstm = LSTM(3, 4)
    with pytest.raises(ModelError):
        lstm.forward(np.zeros((5, 2)))


# ---------------------------------------------------------------- optimizers
def test_sgd_reduces_quadratic_loss():
    parameter = Parameter(np.array([5.0, -3.0]))
    optimizer = SGD([parameter], learning_rate=0.1)
    for _ in range(200):
        parameter.zero_grad()
        parameter.grad += 2 * parameter.value
        optimizer.step()
    assert np.allclose(parameter.value, 0.0, atol=1e-3)


def test_adam_reduces_quadratic_loss():
    parameter = Parameter(np.array([5.0, -3.0]))
    optimizer = Adam([parameter], learning_rate=0.1)
    for _ in range(300):
        parameter.zero_grad()
        parameter.grad += 2 * parameter.value
        optimizer.step()
    assert np.allclose(parameter.value, 0.0, atol=1e-2)


def test_optimizer_validation():
    with pytest.raises(ModelError):
        SGD([], learning_rate=0.1)
    with pytest.raises(ModelError):
        SGD([Parameter(np.zeros(1))], learning_rate=0.0)
    with pytest.raises(ModelError):
        Adam([Parameter(np.zeros(1))], learning_rate=-1.0)


def test_clip_gradients_scales_down():
    parameters = [Parameter(np.zeros(4))]
    parameters[0].grad += np.array([3.0, 4.0, 0.0, 0.0])
    norm = clip_gradients(parameters, max_norm=1.0)
    assert norm == pytest.approx(5.0)
    assert np.linalg.norm(parameters[0].grad) == pytest.approx(1.0)
    with pytest.raises(ModelError):
        clip_gradients(parameters, max_norm=0.0)
