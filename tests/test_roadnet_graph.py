"""Tests of the road-network data structures."""

import math

import pytest

from repro.exceptions import (
    IntersectionNotFoundError,
    RoadNetworkError,
    SegmentNotFoundError,
)
from repro.roadnet import RoadNetwork


def test_add_and_lookup_intersections(line_network):
    assert line_network.num_intersections == 5
    node = line_network.intersection(1)
    assert (node.x, node.y) == (100.0, 0.0)


def test_duplicate_intersection_rejected(line_network):
    with pytest.raises(RoadNetworkError):
        line_network.add_intersection(0, 1.0, 1.0)


def test_missing_intersection_raises(line_network):
    with pytest.raises(IntersectionNotFoundError):
        line_network.intersection(99)


def test_add_and_lookup_segments(line_network):
    assert line_network.num_segments == 5
    segment = line_network.segment(0)
    assert segment.start_node == 0 and segment.end_node == 1
    assert segment.length_m == pytest.approx(100.0)


def test_segment_between(line_network):
    assert line_network.segment_between(0, 1).segment_id == 0
    assert line_network.segment_between(3, 0) is None


def test_missing_segment_raises(line_network):
    with pytest.raises(SegmentNotFoundError):
        line_network.segment(42)


def test_segment_needs_existing_nodes():
    network = RoadNetwork()
    network.add_intersection(0, 0, 0)
    with pytest.raises(IntersectionNotFoundError):
        network.add_segment(0, 0, 7)


def test_self_loop_rejected():
    network = RoadNetwork()
    network.add_intersection(0, 0, 0)
    with pytest.raises(RoadNetworkError):
        network.add_segment(0, 0, 0)


def test_duplicate_segment_rejected(line_network):
    with pytest.raises(RoadNetworkError):
        line_network.add_segment(0, 2, 3)


def test_successor_and_predecessor_segments(line_network):
    assert sorted(line_network.successor_segments(0)) == [1, 3]
    assert sorted(line_network.predecessor_segments(2)) == [1, 4]


def test_degrees(line_network):
    # Segment 0 (n0->n1) can be followed by segments 1 and 3.
    assert line_network.out_degree(0) == 2
    # Segment 2 (n2->n3) can be reached from segments 1 and 4.
    assert line_network.in_degree(2) == 2
    assert line_network.in_degree(0) == 0


def test_is_route_connected(line_network):
    assert line_network.is_route_connected([0, 1, 2])
    assert line_network.is_route_connected([0, 3, 4, 2])
    assert not line_network.is_route_connected([0, 2])


def test_travel_time_property(line_network):
    segment = line_network.segment(0)
    assert segment.travel_time_s == pytest.approx(segment.length_m / segment.speed_limit_mps)


def test_segment_midpoint(line_network):
    x, y = line_network.segment_midpoint(0)
    assert (x, y) == (50.0, 0.0)


def test_project_point_on_segment(line_network):
    distance, fraction, offset = line_network.project_point(0, 50.0, 30.0)
    assert distance == pytest.approx(30.0)
    assert fraction == pytest.approx(0.5)
    assert offset == pytest.approx(50.0)


def test_project_point_clamps_to_endpoints(line_network):
    distance, fraction, _ = line_network.project_point(0, -40.0, 0.0)
    assert fraction == 0.0
    assert distance == pytest.approx(40.0)


def test_point_along_segment(line_network):
    assert line_network.point_along_segment(0, 0.25) == (25.0, 0.0)
    assert line_network.point_along_segment(0, 2.0) == (100.0, 0.0)


def test_bounding_box(line_network):
    min_x, min_y, max_x, max_y = line_network.bounding_box()
    assert (min_x, min_y) == (0.0, 0.0)
    assert (max_x, max_y) == (300.0, 120.0)


def test_bounding_box_empty_network():
    with pytest.raises(RoadNetworkError):
        RoadNetwork().bounding_box()


def test_subgraph_segments(line_network):
    sub = line_network.subgraph_segments([0, 1])
    assert sub.num_segments == 2
    assert sub.num_intersections == 3
    assert 2 not in sub


def test_contains_and_len(line_network):
    assert 0 in line_network
    assert 99 not in line_network
    assert len(line_network) == 5


def test_repr_mentions_sizes(line_network):
    assert "num_segments=5" in repr(line_network)
