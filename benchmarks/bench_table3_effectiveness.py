"""Table III — effectiveness comparison of RL4OASD with the seven baselines."""

import pytest

from repro.experiments.table3 import run_table3

from conftest import bench_settings, record_result


@pytest.fixture(scope="module")
def table3():
    result = run_table3(bench_settings())
    record_result("table3_effectiveness", result.format())
    return result


def test_rl4oasd_beats_every_baseline(table3):
    """The headline claim: RL4OASD outperforms the best baseline on both cities."""
    for city in table3.runs:
        assert table3.rl4oasd_f1(city) > table3.best_baseline_f1(city)


def test_rl4oasd_absolute_quality(table3):
    """RL4OASD reaches a high absolute F1, as in the paper (0.85 / 0.86)."""
    for city in table3.runs:
        assert table3.rl4oasd_f1(city) > 0.6


def test_all_baselines_present(table3):
    for city, runs in table3.runs.items():
        assert set(runs) == {"IBOAT", "DBTOD", "GM-VSAE", "SD-VSAE", "SAE",
                             "VSAE", "CTSS", "RL4OASD"}


def test_bench_table3_detection(benchmark, table3):
    """Time one online detection with the trained RL4OASD-equivalent pipeline."""
    from repro.experiments.common import prepare_city, build_pipeline, train_rl4oasd

    settings = bench_settings(joint_trajectories=40)
    split = prepare_city("chengdu", settings)
    model, _ = train_rl4oasd(split, settings)
    detector = model.detector()
    trajectory = split.test[0]
    benchmark(detector.detect, trajectory)
