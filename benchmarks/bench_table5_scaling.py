"""Table V — preprocessing and training time as the data size grows."""

import pytest

from repro.experiments.table5 import run_table5

from conftest import bench_settings, record_result


@pytest.fixture(scope="module")
def table5():
    settings = bench_settings(joint_trajectories=100)
    result = run_table5(settings, data_sizes=(150, 300, 450, 600),
                        raw_sample_per_size=25)
    record_result("table5_scaling", result.format())
    return result


def test_costs_grow_with_data_size(table5):
    """Preprocessing and training cost grow (roughly linearly) with data size."""
    rows = table5.rows
    assert rows[-1].map_matching_seconds > rows[0].map_matching_seconds
    assert rows[-1].noisy_labeling_seconds >= rows[0].noisy_labeling_seconds * 0.8
    assert rows[-1].training_seconds >= rows[0].training_seconds * 0.8


def test_f1_is_reasonable_at_every_size(table5):
    assert all(row.f1 > 0.3 for row in table5.rows)


def test_bench_table5_map_matching(benchmark, table5):
    """Time HMM map matching of a single raw trajectory."""
    from repro.datagen import tiny_dataset
    from repro.mapmatching import HMMMapMatcher

    dataset = tiny_dataset(seed=4, include_raw=True)
    matcher = HMMMapMatcher(dataset.network)
    raw = dataset.raw_trajectories[0]
    benchmark(matcher.match, raw)
