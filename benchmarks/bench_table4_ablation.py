"""Table IV — ablation study of RL4OASD's components."""

import pytest

from repro.experiments.table4 import run_table4

from conftest import bench_settings, record_result


@pytest.fixture(scope="module")
def table4():
    settings = bench_settings(joint_trajectories=120)
    result = run_table4(settings)
    record_result("table4_ablation", result.format())
    return result


def test_full_model_is_best_or_close(table4):
    """The full model is at least as good as the heavily ablated variants."""
    f1 = table4.f1_by_variant
    full = f1["RL4OASD"]
    assert full >= f1["only transition frequency"] - 0.05
    assert full >= f1["w/o noisy labels"] - 0.05


def test_every_ablation_row_present(table4):
    expected = {"RL4OASD", "w/o noisy labels", "w/o road segment embeddings",
                "w/o RNEL", "w/o DL", "w/o local reward", "w/o global reward",
                "w/o ASDNet", "only transition frequency"}
    assert set(table4.f1_by_variant) == expected


def test_bench_table4_noisy_labels(benchmark, table4):
    """Time the noisy-label construction that warm-starts every variant."""
    from repro.datagen import tiny_dataset
    from repro.labeling import PreprocessingPipeline

    dataset = tiny_dataset(seed=2)
    pipeline = PreprocessingPipeline(dataset.network, dataset.trajectories)
    trajectory = dataset.trajectories[0]
    benchmark(pipeline.preprocess, trajectory)
