"""Figure 4 — detection scalability (runtime per trajectory by length group)."""

import pytest

from repro.experiments.fig4 import run_fig4

from conftest import bench_settings, record_result


@pytest.fixture(scope="module")
def fig4():
    settings = bench_settings(joint_trajectories=100)
    result = run_fig4(settings, max_per_group=15)
    record_result("fig4_scalability", result.format())
    return result


def test_longer_groups_cost_more(fig4):
    """Per-trajectory latency grows with trajectory length for RL4OASD."""
    for city, by_method in fig4.per_trajectory_ms.items():
        groups = by_method["RL4OASD"]
        present = [groups[g] for g in sorted(groups)]
        if len(present) >= 2:
            assert present[-1] >= present[0]


def test_bench_fig4_detection_long(benchmark, fig4):
    """Time detection of one long trajectory end to end."""
    from repro.experiments.common import prepare_city, build_pipeline
    from repro.baselines import IBOATDetector

    settings = bench_settings()
    split = prepare_city("chengdu", settings)
    pipeline = build_pipeline(split, settings)
    detector = IBOATDetector(pipeline)
    longest = max(split.test, key=len)
    benchmark(detector.detect, longest)
