"""Table II — dataset statistics of the two synthetic cities."""

import pytest

from repro.experiments.table2 import run_table2

from conftest import bench_settings, record_result


@pytest.fixture(scope="module")
def table2():
    result = run_table2(bench_settings())
    record_result("table2_dataset_stats", result.format())
    return result


def test_table2_statistics_shape(table2):
    """Both cities are generated, Chengdu-like is the larger of the two."""
    stats = table2.statistics
    assert len(stats) == 2
    chengdu = stats["chengdu-like"]
    xian = stats["xian-like"]
    assert chengdu.num_trajectories > xian.num_trajectories
    assert 0.0 < chengdu.anomalous_ratio < 0.2
    assert 0.0 < xian.anomalous_ratio < 0.25
    assert xian.anomalous_ratio > chengdu.anomalous_ratio


def test_bench_table2(benchmark, table2):
    """Time the statistics computation itself (the generation ran once above)."""
    from repro.datagen import tiny_dataset

    dataset = tiny_dataset(seed=1)
    benchmark(dataset.statistics)
