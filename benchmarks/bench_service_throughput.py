"""Service throughput: the sharded DetectionService vs. one StreamEngine.

Replays the same fleet workload several ways — one batched ``StreamEngine``
(the single-engine baseline), an in-process service through the synchronous
wrapper and through the raw asyncio driver (``serve_fleet_async``; facade
overhead, no IPC), and a multi-process service at 1/2/4 shards — verifies
every path produces identical labels, reports points/sec for each, and
exercises the backpressure path (a deliberately tiny queue fills, the
driver retries, no stream is lost).

Sharding pays through parallelism, so what the numbers show depends on the
machine: on a single core the process backend only adds IPC cost, while on a
multicore host the shards' ticks overlap and the service overtakes the
single engine. The facade-overhead floor always arms (it measures batching,
not parallelism); the scaling assertions only arm when enough cores are
present (and every floor can be tuned for noisy shared runners):

* ``REPRO_BENCH_MIN_INPROC_RATIO`` — required points/sec ratio of the
  1-shard in-process service over the bare single engine (default 0.6):
  how much of the raw engine the batched command/result planes keep;
* ``REPRO_BENCH_MIN_SERVICE_SCALING`` — required points/sec ratio of the
  4-shard service over the 1-shard service (default 1.2);
* ``REPRO_BENCH_MIN_SERVICE_SPEEDUP`` — required ratio of the best
  multi-shard service over the single-engine baseline (default 1.0).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py -s
"""

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from repro.core import replay_fleet
from repro.eval import measure_async_throughput, measure_throughput
from repro.experiments.common import prepare_city, train_rl4oasd
from repro.serve import serve_fleet, serve_fleet_async

from conftest import bench_settings, maybe_record_json, record_result

CONCURRENCY = 128
WORKLOAD_TRIPS = 256
SHARD_COUNTS = (1, 2, 4)
#: Cores needed before the parallel-scaling assertions arm.
MIN_CORES_FOR_SCALING = 4
MIN_INPROC_RATIO = float(
    os.environ.get("REPRO_BENCH_MIN_INPROC_RATIO", "0.6"))
MIN_SERVICE_SCALING = float(
    os.environ.get("REPRO_BENCH_MIN_SERVICE_SCALING", "1.2"))
MIN_SERVICE_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_SERVICE_SPEEDUP", "1.0"))


@pytest.fixture(scope="module")
def service_throughput():
    result = run_bench()
    record_result("service_throughput", result["text"])
    return result


def _measure_service(model, workload, total_points, *, num_shards, backend,
                     queue_depth=1024, name=None):
    """points/sec of one service configuration over the workload."""
    with model.detection_service(num_shards=num_shards, backend=backend,
                                 queue_depth=queue_depth) as service:
        started = time.perf_counter()
        results = serve_fleet(service, workload, concurrency=CONCURRENCY)
        elapsed = time.perf_counter() - started
        metrics = service.metrics()
    report = metrics.throughput_report(
        name=name or f"DetectionService ({backend}, {num_shards} shard(s))",
        total_seconds=elapsed)
    assert report.total_points == total_points
    assert metrics.results_pending == 0
    assert metrics.results_duplicates == 0
    return report, results, metrics


def _measure_service_async(model, workload, total_points, *, num_shards,
                           backend, name):
    """Same fleet, driven on the raw asyncio entry point.

    ``serve_fleet`` is ``asyncio.run(serve_fleet_async(...))``, so this row
    should land within noise of the synchronous one — printing both keeps
    the wrapper honest in the recorded results.
    """
    with model.detection_service(num_shards=num_shards, backend=backend,
                                 queue_depth=1024) as service:
        report, results = measure_async_throughput(
            lambda: serve_fleet_async(service, workload,
                                      concurrency=CONCURRENCY),
            total_points, name=name, num_trajectories=len(workload))
        metrics = service.metrics()
    assert metrics.results_pending == 0
    assert metrics.results_delivered == len(workload)
    return report, results, metrics


def _exercise_backpressure(model, workload):
    """A queue of depth 2 must fill; retries must still deliver everything."""
    fleet = workload[:32]
    with model.detection_service(num_shards=1, backend="inprocess",
                                 queue_depth=2) as service:
        results = serve_fleet(service, fleet, concurrency=16)
        metrics = service.metrics()
    complete = (len(results) == len(fleet)
                and all(len(result.labels) == len(trajectory)
                        for trajectory, result in zip(fleet, results)))
    return metrics.rejected_ingests, complete, results


def run_bench(smoke: bool = False):
    if smoke:
        settings = bench_settings(scale=0.15, joint_trajectories=30,
                                  joint_epochs=1, pretrain_epochs=2)
        shard_counts, trips = (1,), 64
    else:
        settings = bench_settings(joint_trajectories=100)
        shard_counts, trips = SHARD_COUNTS, WORKLOAD_TRIPS
    split = prepare_city("chengdu", settings)
    model, _ = train_rl4oasd(split, settings)
    workload = [split.test[i % len(split.test)] for i in range(trips)]
    total_points = sum(len(trajectory) for trajectory in workload)

    engine = model.stream_engine()
    single, single_results = measure_throughput(
        lambda: replay_fleet(engine, workload, concurrency=64),
        total_points, name="StreamEngine (single, 64 streams)",
        num_trajectories=len(workload))

    mismatches = 0
    rows = [single]
    inproc, inproc_results, _ = _measure_service(
        model, workload, total_points, num_shards=1, backend="inprocess",
        name="DetectionService (inprocess, 1 shard)")
    rows.append(inproc)
    mismatches += sum(1 for a, b in zip(single_results, inproc_results)
                      if a.labels != b.labels)

    inproc_async, async_results, _ = _measure_service_async(
        model, workload, total_points, num_shards=1, backend="inprocess",
        name="DetectionService (inprocess, 1 shard, async driver)")
    rows.append(inproc_async)
    mismatches += sum(1 for a, b in zip(single_results, async_results)
                      if a.labels != b.labels)

    by_shards = {}
    for num_shards in shard_counts:
        report, results, metrics = _measure_service(
            model, workload, total_points, num_shards=num_shards,
            backend="process")
        by_shards[num_shards] = report
        rows.append(report)
        mismatches += sum(1 for a, b in zip(single_results, results)
                          if a.labels != b.labels)
        last_metrics = metrics

    rejected, complete, _ = _exercise_backpressure(model, workload)

    best = max(by_shards.values(), key=lambda r: r.points_per_second)
    scaling = (by_shards[max(by_shards)].points_per_second
               / by_shards[min(by_shards)].points_per_second)
    speedup = best.speedup_over(single)
    inproc_ratio = inproc.speedup_over(single)
    cores = os.cpu_count() or 1
    text_lines = [
        "Sharded detection service throughput"
        + (" (smoke)" if smoke else ""),
        f"  workload: {len(workload)} trips, {total_points} points, "
        f"concurrency {CONCURRENCY}, {cores} core(s)",
    ]
    text_lines.extend(f"  {report.format()}" for report in rows)
    text_lines.extend([
        f"  inprocess 1-shard vs single engine: {inproc_ratio:.2f}x "
        f"(floor {MIN_INPROC_RATIO:.2f}x)",
        f"  scaling {min(by_shards)}->{max(by_shards)} shards: "
        f"{scaling:.2f}x   best service vs single engine: {speedup:.2f}x",
        f"  label mismatches: {mismatches}",
        f"  backpressure: {rejected} rejections ridden out, "
        f"all streams complete: {complete}",
        f"  last run cache hit rate: {last_metrics.cache_hit_rate:.1%}",
    ])
    return {
        "text": "\n".join(text_lines),
        "mismatches": mismatches,
        "rejected": rejected,
        "complete": complete,
        "inproc_ratio": inproc_ratio,
        "scaling": scaling,
        "speedup": speedup,
        "cores": cores,
        "smoke": smoke,
        "single": single,
        "by_shards": by_shards,
    }


def test_service_matches_single_engine_labels(service_throughput):
    assert service_throughput["mismatches"] == 0


def test_inprocess_facade_overhead_is_bounded(service_throughput):
    """Batched command/result planes must keep the 1-shard in-process
    service at >= ``MIN_INPROC_RATIO`` of the bare engine's points/sec."""
    assert service_throughput["inproc_ratio"] >= MIN_INPROC_RATIO, \
        service_throughput["text"]


def test_backpressure_path_loses_no_stream(service_throughput):
    assert service_throughput["rejected"] > 0
    assert service_throughput["complete"]


def test_multi_shard_scaling(service_throughput):
    """4 shards must out-run 1 shard — and the single-engine baseline — when
    the host actually has cores to scale onto."""
    if service_throughput["cores"] < MIN_CORES_FOR_SCALING:
        pytest.skip(f"needs >= {MIN_CORES_FOR_SCALING} cores to measure "
                    f"parallel scaling, host has {service_throughput['cores']}")
    assert service_throughput["scaling"] >= MIN_SERVICE_SCALING, \
        service_throughput["text"]
    assert service_throughput["speedup"] >= MIN_SERVICE_SPEEDUP, \
        service_throughput["text"]


def test_bench_service_round(benchmark, service_throughput):
    """Time one fleet round through a 2-shard in-process service."""
    model_settings = bench_settings(scale=0.15, joint_trajectories=30,
                                    joint_epochs=1, pretrain_epochs=2)
    split = prepare_city("chengdu", model_settings)
    model, _ = train_rl4oasd(split, model_settings)
    service = model.detection_service(num_shards=2, backend="inprocess",
                                      queue_depth=4096)
    feeds = []
    for vehicle in range(32):
        trajectory = split.test[vehicle % len(split.test)]
        service.ingest_blocking(vehicle, trajectory.segments[0],
                                destination=trajectory.destination,
                                start_time_s=trajectory.start_time_s)
        feeds.append((vehicle, trajectory.segments))
    cursor = [1]

    def service_round():
        position = cursor[0]
        cursor[0] += 1
        for vehicle, segments in feeds:
            service.ingest_blocking(vehicle, segments[position % len(segments)])
        service.pump()

    benchmark(service_round)
    service.close()


def main() -> None:
    smoke = "--smoke" in sys.argv
    result = run_bench(smoke=smoke)
    print(result["text"])
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "service_throughput.txt").write_text(
        result["text"] + "\n", encoding="utf-8")
    maybe_record_json("service_throughput", result)
    if result["mismatches"]:
        raise SystemExit("label mismatch between service and single engine")
    if not (result["rejected"] > 0 and result["complete"]):
        raise SystemExit("backpressure path was not exercised cleanly")
    if result["inproc_ratio"] < MIN_INPROC_RATIO:
        raise SystemExit(
            f"inprocess/engine ratio {result['inproc_ratio']:.2f}x below "
            f"the {MIN_INPROC_RATIO:.2f}x floor")
    if smoke:
        return
    if result["cores"] >= MIN_CORES_FOR_SCALING:
        if result["scaling"] < MIN_SERVICE_SCALING:
            raise SystemExit(
                f"scaling {result['scaling']:.2f}x below the "
                f"{MIN_SERVICE_SCALING:.1f}x floor")
        if result["speedup"] < MIN_SERVICE_SPEEDUP:
            raise SystemExit(
                f"best service speedup {result['speedup']:.2f}x below the "
                f"{MIN_SERVICE_SPEEDUP:.1f}x floor")
    else:
        print(f"[scaling assertions skipped: "
              f"{result['cores']} < {MIN_CORES_FOR_SCALING} cores]")


if __name__ == "__main__":
    main()
