"""Figure 3 — overall online detection efficiency (average runtime per point)."""

import pytest

from repro.experiments.fig3 import run_fig3

from conftest import bench_settings, record_result


@pytest.fixture(scope="module")
def fig3():
    settings = bench_settings(joint_trajectories=100)
    result = run_fig3(settings, max_trajectories=40)
    record_result("fig3_efficiency", result.format())
    return result


def test_rl4oasd_meets_online_budget(fig3):
    """RL4OASD processes each newly generated point well within the 2 s sampling rate."""
    for city, by_method in fig3.per_point_ms.items():
        assert by_method["RL4OASD"] < 100.0  # milliseconds


def test_ctss_is_slowest_of_the_family(fig3):
    """CTSS (quadratic Fréchet) should be slower than the lightweight DBTOD."""
    for city, by_method in fig3.per_point_ms.items():
        assert by_method["CTSS"] > by_method["DBTOD"]


def test_bench_fig3_single_point(benchmark, fig3):
    """Time a single incremental RSRNet step (the per-point inner loop)."""
    import numpy as np
    from repro.core import RSRNet
    from repro.config import RSRNetConfig

    net = RSRNet(vocabulary_size=200,
                 config=RSRNetConfig(embedding_dim=64, hidden_dim=64, nrf_dim=32))
    state = net.begin_sequence()

    def step():
        net.step(state, 10, 0)

    benchmark(step)
