"""Figure 5 — detour case study (RL4OASD vs CTSS vs ground truth)."""

import pytest

from repro.experiments.fig5 import run_fig5

from conftest import bench_settings, record_result


@pytest.fixture(scope="module")
def fig5():
    settings = bench_settings(joint_trajectories=120)
    result = run_fig5(settings, max_cases=3)
    record_result("fig5_case_study", result.format())
    return result


def test_case_study_has_cases(fig5):
    assert len(fig5.cases) >= 1
    for case in fig5.cases:
        assert set(case.predictions) == {"CTSS", "RL4OASD"}
        assert len(case.ground_truth) == len(case.predictions["RL4OASD"])


def test_rl4oasd_at_least_as_good_on_average(fig5):
    """Across the case studies RL4OASD's per-trajectory F1 matches or beats CTSS."""
    rl = sum(case.f1["RL4OASD"] for case in fig5.cases)
    ctss = sum(case.f1["CTSS"] for case in fig5.cases)
    assert rl >= ctss - 0.25


def test_bench_fig5_span_metrics(benchmark, fig5):
    """Time the span-matching metric used to score every case."""
    from repro.eval.metrics import evaluate_labelings

    truths = [case.ground_truth for case in fig5.cases]
    preds = [case.predictions["RL4OASD"] for case in fig5.cases]
    benchmark(evaluate_labelings, truths, preds)
