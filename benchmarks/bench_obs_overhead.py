"""Observability overhead: tracing at full sample rate vs. tracing off.

The obs plane's contract is zero-cost-when-off and cheap-when-on. This
harness replays the identical fleet through a 2-shard in-process service
three ways — no ``ObsConfig`` (tracing fully off), a deployment-realistic
sample rate (``REPRO_BENCH_OBS_RATE``, default 0.05), and the rate-1.0
worst case where every ingest is traced — verifies all runs produce
identical labels, and requires the sampled run to keep

* ``REPRO_BENCH_MIN_OBS_RATIO`` — required points/sec ratio of the
  sampled-tracing run over the untraced run (default 0.95)

of the untraced throughput (each mode is timed best-of-3: one fleet pass
here is milliseconds, single-shot ratios are noise). The rate-1.0 ratio is
recorded alongside as the worst case but carries no floor — tracing every
fix costs ~5 histogram observations per point, which no sane deployment
pays (that is what the sample rate is for).

It then runs the tracing plane's acceptance check: a raw-GPS gateway →
service → results-bus fleet at sample rate 1.0 must land observations in
every one of the seven ``STAGES`` histograms (on the process backend too
in the full run), and the Prometheus text exposition must parse and agree
with the ``ServiceMetrics`` / ``GatewayStats`` dashboards.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --json out.json

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -s
"""

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
import pytest

from repro.config import GatewayConfig, ObsConfig
from repro.datagen import sample_gps_trace
from repro.experiments.common import prepare_city, train_rl4oasd
from repro.ingest import GpsGateway, serve_raw_fleet
from repro.mapmatching import HMMMapMatcher
from repro.obs import STAGE_LATENCY_METRIC, STAGES, parse_prometheus
from repro.serve import serve_fleet

from conftest import bench_settings, maybe_record_json, record_result

CONCURRENCY = 128
WORKLOAD_TRIPS = 192
GATEWAY_TRIPS = 24
GPS_NOISE_M = 2.0
TIMING_ROUNDS = 3
MIN_OBS_RATIO = float(os.environ.get("REPRO_BENCH_MIN_OBS_RATIO", "0.95"))
OBS_RATE = float(os.environ.get("REPRO_BENCH_OBS_RATE", "0.05"))


@pytest.fixture(scope="module")
def obs_overhead():
    result = run_bench()
    record_result("obs_overhead", result["text"])
    return result


def _measure(model, workload, total_points, *, obs, name,
             rounds=TIMING_ROUNDS):
    """Best-of-``rounds`` points/sec of one service configuration.

    One fleet pass takes milliseconds at benchmark scale, so a single-shot
    on/off ratio is scheduler noise; the best of a few fresh-service passes
    is what each mode can actually do. Labels pin behavioural equality.
    """
    best = None
    labels = None
    sampled = 0
    for _ in range(rounds):
        with model.detection_service(num_shards=2, backend="inprocess",
                                     queue_depth=4096, obs=obs) as service:
            started = time.perf_counter()
            results = serve_fleet(service, workload, concurrency=CONCURRENCY)
            elapsed = time.perf_counter() - started
            metrics = service.metrics()
            if service.tracer is not None:
                sampled = max(sampled, service.tracer.sampled)
        report = metrics.throughput_report(name=name, total_seconds=elapsed)
        assert report.total_points == total_points
        run_labels = [result.labels for result in results]
        if labels is None:
            labels = run_labels
        else:
            assert labels == run_labels  # deterministic across repeats
        if best is None or report.points_per_second > best.points_per_second:
            best = report
    return best, labels, sampled


def _traced_gateway_acceptance(model, split, raws, backend):
    """One traced raw-GPS run; returns per-stage counts + agreement flag."""
    matcher = HMMMapMatcher(split.dataset.network)
    with model.detection_service(
            num_shards=2, backend=backend,
            obs=ObsConfig(trace_sample_rate=1.0)) as service:
        gateway = GpsGateway(service, matcher,
                             GatewayConfig(async_sessions=True))
        serve_raw_fleet(gateway, raws, concurrency=32)
        registry = service.obs_registry()
        stage_counts = {}
        for stage in STAGES:
            histogram = registry.get(STAGE_LATENCY_METRIC, {"stage": stage})
            stage_counts[stage] = histogram.count if histogram else 0
        samples = parse_prometheus(gateway.metrics_text())  # must parse
        metrics = service.metrics()
        stats = gateway.stats()
        agrees = (
            samples[("repro_service_accepted_ingests_total", ())]
            == metrics.accepted_ingests
            and samples[("repro_service_results_delivered_total", ())]
            == metrics.results_delivered
            and samples[("repro_gateway_raw_points_total", ())]
            == stats.raw_points
            and samples[("repro_gateway_matched_points_total", ())]
            == stats.matched_points)
    return stage_counts, agrees


def _raw_workload(split, trips):
    rng = np.random.default_rng(17)
    network = split.dataset.network
    raws = []
    for index in range(trips):
        truth = split.test[index % len(split.test)]
        raws.append(sample_gps_trace(
            network, truth.segments, truth.start_time_s, rng,
            gps_noise_m=GPS_NOISE_M, trajectory_id=index))
    return raws


def run_bench(smoke: bool = False):
    if smoke:
        settings = bench_settings(scale=0.15, joint_trajectories=30,
                                  joint_epochs=1, pretrain_epochs=2)
        trips, gateway_trips, backends = 64, 8, ("inprocess",)
    else:
        settings = bench_settings(joint_trajectories=100)
        trips, gateway_trips = WORKLOAD_TRIPS, GATEWAY_TRIPS
        backends = ("inprocess", "process")
    split = prepare_city("chengdu", settings)
    model, _ = train_rl4oasd(split, settings)
    workload = [split.test[i % len(split.test)] for i in range(trips)]
    total_points = sum(len(trajectory) for trajectory in workload)

    # Warm caches (feature tables, allocator) so no timed mode pays
    # first-touch costs the others did not.
    _measure(model, workload[:16], sum(len(t) for t in workload[:16]),
             obs=None, name="warmup", rounds=1)

    off, off_labels, _ = _measure(
        model, workload, total_points, obs=None,
        name="DetectionService (tracing off)")
    on, on_labels, sampled = _measure(
        model, workload, total_points,
        obs=ObsConfig(trace_sample_rate=OBS_RATE),
        name=f"DetectionService (tracing on, rate {OBS_RATE:g})")
    full, full_labels, full_sampled = _measure(
        model, workload, total_points,
        obs=ObsConfig(trace_sample_rate=1.0),
        name="DetectionService (tracing on, rate 1.0)")
    mismatches = (sum(1 for a, b in zip(off_labels, on_labels) if a != b)
                  + sum(1 for a, b in zip(off_labels, full_labels)
                        if a != b))
    ratio = on.points_per_second / off.points_per_second
    full_ratio = full.points_per_second / off.points_per_second

    raws = _raw_workload(split, gateway_trips)
    stage_counts = {}
    agreement = {}
    for backend in backends:
        stage_counts[backend], agreement[backend] = \
            _traced_gateway_acceptance(model, split, raws, backend)
    empty_stages = {backend: [stage for stage, count in counts.items()
                              if count == 0]
                    for backend, counts in stage_counts.items()}

    text_lines = [
        "Observability overhead" + (" (smoke)" if smoke else ""),
        f"  workload: {len(workload)} trips, {total_points} points, "
        f"concurrency {CONCURRENCY}",
        f"  {off.format()}",
        f"  {on.format()}",
        f"  {full.format()}",
        f"  sampled-tracing/off ratio (rate {OBS_RATE:g}): {ratio:.2f}x "
        f"(floor {MIN_OBS_RATIO:.2f}x), {sampled} traces originated",
        f"  full-tracing/off ratio (rate 1.0, worst case, no floor): "
        f"{full_ratio:.2f}x, {full_sampled} traces originated",
        f"  label mismatches: {mismatches}",
    ]
    for backend in backends:
        counts = stage_counts[backend]
        text_lines.append(
            f"  traced gateway run ({backend}): "
            + ", ".join(f"{stage}={counts[stage]}" for stage in STAGES)
            + f", exposition agrees: {agreement[backend]}")
    return {
        "text": "\n".join(text_lines),
        "ratio": ratio,
        "full_ratio": full_ratio,
        "mismatches": mismatches,
        "sampled": sampled,
        "full_sampled": full_sampled,
        "off": off,
        "on": on,
        "full": full,
        "stage_counts": stage_counts,
        "empty_stages": empty_stages,
        "agreement": agreement,
        "smoke": smoke,
    }


def test_tracing_does_not_change_labels(obs_overhead):
    assert obs_overhead["mismatches"] == 0


def test_tracing_overhead_is_bounded(obs_overhead):
    """Sampled tracing must keep >= MIN_OBS_RATIO of untraced points/sec."""
    assert obs_overhead["ratio"] >= MIN_OBS_RATIO, obs_overhead["text"]


def test_all_seven_stages_observed(obs_overhead):
    for backend, empty in obs_overhead["empty_stages"].items():
        assert not empty, f"{backend}: no observations for {empty}"


def test_exposition_agrees_with_dashboards(obs_overhead):
    assert all(obs_overhead["agreement"].values()), obs_overhead["text"]


def main() -> None:
    smoke = "--smoke" in sys.argv
    result = run_bench(smoke=smoke)
    print(result["text"])
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "obs_overhead.txt").write_text(
        result["text"] + "\n", encoding="utf-8")
    maybe_record_json("obs_overhead", result)
    if result["mismatches"]:
        raise SystemExit("tracing changed detection labels")
    for backend, empty in result["empty_stages"].items():
        if empty:
            raise SystemExit(
                f"{backend}: stages with no observations: {empty}")
    if not all(result["agreement"].values()):
        raise SystemExit("exposition disagrees with the metrics dashboards")
    if result["ratio"] < MIN_OBS_RATIO:
        raise SystemExit(
            f"sampled-tracing/off ratio {result['ratio']:.2f}x below the "
            f"{MIN_OBS_RATIO:.2f}x floor")


if __name__ == "__main__":
    main()
