"""Figure 6 — detection under varying traffic conditions (concept drift)."""

import pytest

from repro.experiments.fig6 import run_fig6

from conftest import bench_settings, record_result


@pytest.fixture(scope="module")
def fig6():
    settings = bench_settings(scale=0.25, joint_trajectories=80,
                              pretrain_trajectories=150)
    result = run_fig6(settings, xi_values=(1, 2, 4), xi_for_parts=2)
    record_result("fig6_concept_drift", result.format())
    return result


def test_fine_tuning_tracks_drift(fig6):
    """On drifted parts (part >= 2) the fine-tuned model is at least as good
    as the frozen Part-1 model on average."""
    later = [p for p in fig6.parts if p.part >= 1]
    if later:
        ft = sum(p.f1_ft for p in later) / len(later)
        p1 = sum(p.f1_p1 for p in later) / len(later)
        assert ft >= p1 - 0.05


def test_fine_tuning_is_fast(fig6):
    """Per-part fine-tuning stays far below the duration of a part of the day."""
    assert all(p.fine_tune_seconds < 300 for p in fig6.parts)


def test_bench_fig6_fine_tune_step(benchmark, fig6):
    """Time a single fine-tuning step on a handful of new trajectories."""
    from repro.datagen import tiny_dataset
    from repro.core import RL4OASDTrainer
    from repro.config import RSRNetConfig, ASDNetConfig, TrainingConfig

    dataset = tiny_dataset(seed=6)
    train = dataset.trajectories[:150]
    trainer = RL4OASDTrainer(
        dataset.network, train,
        rsrnet_config=RSRNetConfig(embedding_dim=16, hidden_dim=16, nrf_dim=8),
        asdnet_config=ASDNetConfig(label_embedding_dim=8),
        training_config=TrainingConfig(pretrain_trajectories=20,
                                       joint_trajectories=20, joint_epochs=1,
                                       validation_interval=20),
    )
    trainer.train()
    new_data = dataset.trajectories[150:160]
    benchmark(trainer.fine_tune, new_data, 1)
