"""Parameter study — the effect of alpha, delta and the delay window D."""

import pytest

from repro.experiments.param_study import run_param_study

from conftest import bench_settings, record_result


@pytest.fixture(scope="module")
def param_study():
    settings = bench_settings(joint_trajectories=60)
    result = run_param_study(
        settings,
        alphas=(0.25, 0.35, 0.5),
        deltas=(0.2, 0.25, 0.4),
        delays=(0, 4, 8),
    )
    record_result("param_study", result.format())
    return result


def test_sweeps_cover_requested_values(param_study):
    assert set(param_study.f1_by_alpha) == {0.25, 0.35, 0.5}
    assert set(param_study.f1_by_delta) == {0.2, 0.25, 0.4}
    assert set(param_study.f1_by_delay) == {0, 4, 8}


def test_moderate_thresholds_win(param_study):
    """A moderate alpha/delta outperforms the extremes on the synthetic data,
    mirroring how the paper selects its thresholds on DiDi data."""
    assert param_study.best_alpha() in (0.25, 0.35)
    assert param_study.best_delta() in (0.2, 0.25)


def test_bench_param_study_delay(benchmark, param_study):
    """Time the delayed-labeling post-processing itself."""
    from repro.core.detector import apply_delayed_labeling

    labels = ([0] * 5 + [1] * 3 + [0] * 2 + [1] * 2 + [0] * 8) * 4
    benchmark(apply_delayed_labeling, labels, 8)
