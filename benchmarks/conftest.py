"""Shared configuration of the benchmark suite.

Every benchmark regenerates one table or figure of the paper via the
corresponding :mod:`repro.experiments` harness. The harness runs exactly once
per module (session-scoped fixtures); the ``benchmark`` fixture then times a
representative operation of that experiment (typically one online detection),
so ``pytest benchmarks/ --benchmark-only`` stays fast while still printing the
full reproduced artefacts.

The formatted tables are written to ``benchmarks/results/`` and echoed to
stdout (visible with ``pytest -s``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentSettings

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale of the benchmark datasets; override with REPRO_BENCH_SCALE=0.5 etc.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))


def bench_settings(**overrides) -> ExperimentSettings:
    """Experiment settings shared by every benchmark."""
    defaults = dict(
        scale=BENCH_SCALE,
        dev_size=80,
        joint_trajectories=200,
        joint_epochs=2,
        pretrain_epochs=5,
        autoencoder_max_trajectories=200,
    )
    defaults.update(overrides)
    return ExperimentSettings(**defaults)


def record_result(name: str, text: str) -> Path:
    """Write a reproduced table/figure to benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")
    return path


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return bench_settings()
