"""Shared configuration of the benchmark suite.

Every benchmark regenerates one table or figure of the paper via the
corresponding :mod:`repro.experiments` harness. The harness runs exactly once
per module (session-scoped fixtures); the ``benchmark`` fixture then times a
representative operation of that experiment (typically one online detection),
so ``pytest benchmarks/ --benchmark-only`` stays fast while still printing the
full reproduced artefacts.

The formatted tables are written to ``benchmarks/results/`` and echoed to
stdout (visible with ``pytest -s``).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentSettings

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale of the benchmark datasets; override with REPRO_BENCH_SCALE=0.5 etc.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))


def bench_settings(**overrides) -> ExperimentSettings:
    """Experiment settings shared by every benchmark."""
    defaults = dict(
        scale=BENCH_SCALE,
        dev_size=80,
        joint_trajectories=200,
        joint_epochs=2,
        pretrain_epochs=5,
        autoencoder_max_trajectories=200,
    )
    defaults.update(overrides)
    return ExperimentSettings(**defaults)


def record_result(name: str, text: str) -> Path:
    """Write a reproduced table/figure to benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")
    return path


def json_safe(value):
    """Recursively convert a benchmark result into JSON-encodable values.

    Reports and metrics objects are folded through their ``as_dict()``;
    numpy scalars through ``item()``; anything else unserializable becomes
    its ``str()`` so a payload never fails to record.
    """
    if hasattr(value, "as_dict"):
        return json_safe(value.as_dict())
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [json_safe(item) for item in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def record_json(name: str, payload, path: Path | None = None) -> Path:
    """Write a machine-readable benchmark result next to results/*.txt."""
    path = path if path is not None else RESULTS_DIR / f"{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(json_safe(payload), indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
    print(f"[json written to {path}]")
    return path


def maybe_record_json(name: str, payload, argv=None) -> Path | None:
    """Honor a ``--json [out.json]`` flag on a benchmark's command line.

    Bare ``--json`` writes ``benchmarks/results/<name>.json``; with a
    following path argument it writes there instead. Returns the written
    path, or ``None`` when the flag is absent.
    """
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if "--json" not in argv:
        return None
    index = argv.index("--json")
    explicit = None
    if index + 1 < len(argv) and not argv[index + 1].startswith("-"):
        explicit = Path(argv[index + 1])
    return record_json(name, payload, path=explicit)


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return bench_settings()
