"""End-to-end raw-GPS throughput: gateway + service vs the offline pipeline.

Replays the same raw-GPS fleet workload several ways — the offline pipeline
(whole-trajectory ``HMMMapMatcher.match`` then a 1-shard service), the
serial gateway (``matcher_placement="facade"``: one online matcher on the
caller's thread), the parallel gateway (``matcher_placement="shard"``: one
online matcher *inside* every process-backend shard worker) at 1/2/4
shards, the parallel gateway with session closes riding the results bus
(``async_sessions``), and finally the parallel gateway with per-point
service puts —
verifies every path's labels are identical to the offline pipeline, reports
raw-GPS points/sec, and checks the per-point commit latency stays inside
the configured lattice window.

Three ratios matter:

* **shard scaling** — parallel-gateway points/sec at the max shard count
  over 1 shard. With matching placed on the shards this is the headline
  number: the matcher no longer caps throughput at one facade core;
* **placement gain** — parallel over serial gateway at the max shard count
  (what moving the matcher off the facade thread actually bought);
* **batched-ingest gain** — batched puts over per-point puts at the max
  shard count (one IPC command per batch instead of one per point).

Like the service benchmark, the assertions only arm on hosts with enough
cores (floors tunable for noisy runners):

* ``REPRO_BENCH_MIN_GATEWAY_SCALING`` — required max-shard/1-shard ratio
  of the parallel gateway (default 1.5);
* ``REPRO_BENCH_MIN_BATCH_INGEST_GAIN`` — required batched/per-point ratio
  (default 1.05).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_gateway_throughput.py
    PYTHONPATH=src python benchmarks/bench_gateway_throughput.py --smoke

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_gateway_throughput.py -s
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
import pytest

from repro.config import GatewayConfig
from repro.datagen import sample_gps_trace
from repro.eval import measure_throughput
from repro.experiments.common import prepare_city, train_rl4oasd
from repro.ingest import GpsGateway, serve_raw_fleet
from repro.mapmatching import HMMMapMatcher

from conftest import bench_settings, maybe_record_json, record_result

CONCURRENCY = 64
WORKLOAD_TRIPS = 96
SHARD_COUNTS = (1, 2, 4)
GPS_NOISE_M = 2.0
#: Cores needed before the parallel-scaling assertions arm.
MIN_CORES_FOR_SCALING = 4
MIN_GATEWAY_SCALING = float(
    os.environ.get("REPRO_BENCH_MIN_GATEWAY_SCALING", "1.5"))
MIN_BATCH_INGEST_GAIN = float(
    os.environ.get("REPRO_BENCH_MIN_BATCH_INGEST_GAIN", "1.05"))


@pytest.fixture(scope="module")
def gateway_throughput():
    result = run_bench()
    record_result("gateway_throughput", result["text"])
    return result


def _raw_workload(split, trips):
    """Clean raw GPS traces of the split's test routes (mild noise)."""
    rng = np.random.default_rng(42)
    network = split.dataset.network
    raws = []
    for index in range(trips):
        truth = split.test[index % len(split.test)]
        raws.append(sample_gps_trace(
            network, truth.segments, truth.start_time_s, rng,
            gps_noise_m=GPS_NOISE_M, trajectory_id=index))
    return raws


def _offline_pipeline(model, matcher, raws, total_points):
    """Baseline: match whole trajectories offline, then serve the batch."""
    def run():
        matches = matcher.match_many(raws)
        assert all(match.succeeded for match in matches)
        labels = []
        with model.detection_service(num_shards=1,
                                     backend="inprocess") as service:
            for index, match in enumerate(matches):
                matched = match.matched
                for position, segment in enumerate(matched.segments):
                    if position == 0:
                        service.ingest_blocking(
                            index, segment,
                            start_time_s=matched.start_time_s)
                    else:
                        service.ingest_blocking(index, segment)
                labels.append(service.finalize(index).labels)
        return labels

    report, labels = measure_throughput(
        run, total_points, name="offline match -> 1-shard service",
        num_trajectories=len(raws))
    return report, labels


def _measure_gateway(model, matcher_network, raws, total_points, *,
                     num_shards, backend, ingest_batch,
                     placement="facade", async_sessions=False, name=None):
    """One gateway+service configuration over the raw workload."""
    config = GatewayConfig(ingest_batch=ingest_batch,
                           matcher_placement=placement,
                           async_sessions=async_sessions)
    matcher = HMMMapMatcher(matcher_network)  # fresh distance cache per run
    with model.detection_service(num_shards=num_shards, backend=backend,
                                 queue_depth=1024) as service:
        gateway = GpsGateway(service, matcher, config)
        report, outputs = measure_throughput(
            lambda: serve_raw_fleet(gateway, raws, concurrency=CONCURRENCY),
            total_points,
            name=name or (f"GpsGateway [{placement}] ({backend}, "
                          f"{num_shards} shard(s), batch {ingest_batch})"),
            num_trajectories=len(raws))
        stats = gateway.stats()
        latency = gateway.commit_latency()
    labels = [[session.labels for session in sessions]
              for sessions in outputs]
    return report, labels, stats, latency, config


def run_bench(smoke: bool = False):
    if smoke:
        settings = bench_settings(scale=0.15, joint_trajectories=30,
                                  joint_epochs=1, pretrain_epochs=2)
        shard_counts, trips, backend = (1,), 24, "inprocess"
    else:
        settings = bench_settings(joint_trajectories=100)
        shard_counts, trips, backend = SHARD_COUNTS, WORKLOAD_TRIPS, "process"
    split = prepare_city("chengdu", settings)
    model, _ = train_rl4oasd(split, settings)
    raws = _raw_workload(split, trips)
    total_points = sum(len(raw.points) for raw in raws)

    offline_matcher = HMMMapMatcher(split.dataset.network)
    baseline, reference_labels = _offline_pipeline(
        model, offline_matcher, raws, total_points)

    rows = [baseline]
    mismatches = 0

    def check_labels(labels):
        return sum(1 for expected, sessions in zip(reference_labels, labels)
                   if sessions != [expected])

    # The serial reference point: matcher on the facade thread, 1 shard.
    serial, serial_labels, _, _, _ = _measure_gateway(
        model, split.dataset.network, raws, total_points,
        num_shards=1, backend=backend, placement="facade",
        ingest_batch=GatewayConfig().ingest_batch)
    rows.append(serial)
    mismatches += check_labels(serial_labels)

    # The parallel plane: one matcher per shard worker — the scaling axis.
    by_shards = {}
    last_stats = last_latency = None
    config = GatewayConfig()
    for num_shards in shard_counts:
        report, labels, stats, latency, config = _measure_gateway(
            model, split.dataset.network, raws, total_points,
            num_shards=num_shards, backend=backend, placement="shard",
            ingest_batch=GatewayConfig().ingest_batch)
        by_shards[num_shards] = report
        rows.append(report)
        mismatches += check_labels(labels)
        last_stats, last_latency = stats, latency

    max_shards = max(by_shards)

    # Same shard-matcher plane, but session closes ride the results bus
    # (``async_sessions``) instead of blocking the driver round.
    async_row, async_labels, async_stats, _, _ = _measure_gateway(
        model, split.dataset.network, raws, total_points,
        num_shards=max_shards, backend=backend, placement="shard",
        ingest_batch=GatewayConfig().ingest_batch, async_sessions=True,
        name=f"GpsGateway [shard, async sessions] ({backend}, "
             f"{max_shards} shard(s), batch {GatewayConfig().ingest_batch})")
    rows.append(async_row)
    mismatches += check_labels(async_labels)
    assert async_stats.sessions_closed == len(raws)

    per_point, per_point_labels, _, _, _ = _measure_gateway(
        model, split.dataset.network, raws, total_points,
        num_shards=max_shards, backend=backend, placement="shard",
        ingest_batch=1)
    rows.append(per_point)
    mismatches += check_labels(per_point_labels)

    scaling = (by_shards[max_shards].points_per_second
               / by_shards[min(by_shards)].points_per_second)
    placement_gain = (by_shards[max_shards].points_per_second
                      / serial.points_per_second)
    batch_gain = (by_shards[max_shards].points_per_second
                  / per_point.points_per_second)
    async_gain = (async_row.points_per_second
                  / by_shards[max_shards].points_per_second)
    cores = os.cpu_count() or 1
    latency_bounded = last_latency.maximum <= config.max_pending_points
    text_lines = [
        "Raw-GPS gateway end-to-end throughput"
        + (" (smoke)" if smoke else ""),
        f"  workload: {len(raws)} raw trips, {total_points} GPS fixes "
        f"(noise {GPS_NOISE_M} m), concurrency {CONCURRENCY}, "
        f"{cores} core(s)",
    ]
    text_lines.extend(f"  {report.format()}" for report in rows)
    text_lines.extend([
        f"  shard-matcher scaling {min(by_shards)}->{max_shards} shards: "
        f"{scaling:.2f}x   shard vs facade placement at {max_shards} "
        f"shard(s): {placement_gain:.2f}x",
        f"  batched vs per-point ingest at {max_shards} shard(s): "
        f"{batch_gain:.2f}x",
        f"  async vs blocking session closes at {max_shards} shard(s): "
        f"{async_gain:.2f}x",
        f"  label mismatches vs offline pipeline: {mismatches}",
        f"  {last_latency.format()}",
        f"  commit latency bounded by window "
        f"({config.max_pending_points} points): {latency_bounded}",
        f"  funnel: {last_stats.format()}",
    ])
    return {
        "text": "\n".join(text_lines),
        "mismatches": mismatches,
        "scaling": scaling,
        "placement_gain": placement_gain,
        "batch_gain": batch_gain,
        "async_gain": async_gain,
        "latency_bounded": latency_bounded,
        "latency_max": last_latency.maximum,
        "dropped": last_stats.dropped_points,
        "cores": cores,
        "smoke": smoke,
        "baseline": baseline,
        "serial": serial,
        "by_shards": by_shards,
    }


def test_gateway_matches_offline_pipeline(gateway_throughput):
    assert gateway_throughput["mismatches"] == 0
    assert gateway_throughput["dropped"] == 0


def test_commit_latency_is_bounded(gateway_throughput):
    assert gateway_throughput["latency_bounded"], gateway_throughput["text"]


def test_gateway_scaling_and_batched_ingest(gateway_throughput):
    """Max shards must out-run 1 shard, and batched ingest must beat
    per-point puts, when the host actually has cores to scale onto."""
    if gateway_throughput["smoke"]:
        pytest.skip("smoke run measures one shard only")
    if gateway_throughput["cores"] < MIN_CORES_FOR_SCALING:
        pytest.skip(f"needs >= {MIN_CORES_FOR_SCALING} cores to measure "
                    f"parallel scaling, host has "
                    f"{gateway_throughput['cores']}")
    assert gateway_throughput["scaling"] >= MIN_GATEWAY_SCALING, \
        gateway_throughput["text"]
    assert gateway_throughput["batch_gain"] >= MIN_BATCH_INGEST_GAIN, \
        gateway_throughput["text"]


def test_bench_gateway_round(benchmark):
    """Time one fleet round (one fix per vehicle) through a 1-shard gateway."""
    settings = bench_settings(scale=0.15, joint_trajectories=30,
                              joint_epochs=1, pretrain_epochs=2)
    split = prepare_city("chengdu", settings)
    model, _ = train_rl4oasd(split, settings)
    raws = _raw_workload(split, 16)
    service = model.detection_service(num_shards=1, backend="inprocess",
                                      queue_depth=4096)
    gateway = GpsGateway(service, HMMMapMatcher(split.dataset.network))
    for vehicle, raw in enumerate(raws):
        gateway.push_point(vehicle, raw.points[0],
                           start_time_s=raw.start_time_s)
    cursor = [1]

    def gateway_round():
        position = cursor[0]
        cursor[0] += 1
        for vehicle, raw in enumerate(raws):
            point = raw.points[position % (len(raw.points) - 1)]
            # Keep timestamps monotone across wrapped rounds.
            shifted = type(point)(point.x, point.y,
                                  position * 5.0 + point.t * 1e-3)
            gateway.push_point(vehicle, shifted)
        gateway.pump()

    benchmark(gateway_round)
    service.close()


def main() -> None:
    smoke = "--smoke" in sys.argv
    result = run_bench(smoke=smoke)
    print(result["text"])
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "gateway_throughput.txt").write_text(
        result["text"] + "\n", encoding="utf-8")
    maybe_record_json("gateway_throughput", result)
    if result["mismatches"]:
        raise SystemExit("label mismatch between gateway and offline pipeline")
    if result["dropped"]:
        raise SystemExit("clean workload must not drop points")
    if not result["latency_bounded"]:
        raise SystemExit(
            f"commit latency {result['latency_max']} exceeded the window")
    if smoke:
        return
    if result["cores"] >= MIN_CORES_FOR_SCALING:
        if result["scaling"] < MIN_GATEWAY_SCALING:
            raise SystemExit(
                f"scaling {result['scaling']:.2f}x below the "
                f"{MIN_GATEWAY_SCALING:.2f}x floor")
        if result["batch_gain"] < MIN_BATCH_INGEST_GAIN:
            raise SystemExit(
                f"batched-ingest gain {result['batch_gain']:.2f}x below the "
                f"{MIN_BATCH_INGEST_GAIN:.2f}x floor")
    else:
        print(f"[scaling assertions skipped: "
              f"{result['cores']} < {MIN_CORES_FOR_SCALING} cores]")


if __name__ == "__main__":
    main()
