"""Training throughput: the batched training engine vs. the sequential loop.

Runs the same one-epoch fine-tuning workload — an RL episode plus a
supervised RSRNet gradient step per trajectory, the body of the joint
training loop — through trainers that differ only in batch size. Batch size 1
is the original per-trajectory loop; larger batch sizes run episodes
time-step-synchronously with one vectorized forward, one batch-accumulated
REINFORCE update and one RSRNet step per batch. Every trainer starts from
identically seeded weights, so the comparison isolates engine cost.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_train_throughput.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_train_throughput.py -s
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from repro.eval import measure_training_throughput
from repro.experiments.common import prepare_city, train_rl4oasd

from conftest import bench_settings, maybe_record_json, record_result

BATCH_SIZES = (8, 32, 64)
WORKLOAD_TRIPS = 192
EPOCHS = 1
#: Required epoch-throughput advantage of the batched engine at batch >= 32;
#: override to loosen on noisy shared runners, e.g. REPRO_BENCH_MIN_SPEEDUP=2.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))


@pytest.fixture(scope="module")
def throughput():
    result = run_bench()
    record_result("train_throughput", result["text"])
    return result


def _fresh_trainer(settings, batch_size):
    """A trainer with identically seeded weights at the given batch size."""
    split = _fresh_trainer.split
    _, trainer = train_rl4oasd(
        split, settings,
        training_overrides=dict(
            batch_size=batch_size,
            # The initial fit is not what this benchmark times; keep it tiny
            # (and identical across engines) so runs stay fast.
            pretrain_trajectories=20, pretrain_epochs=1,
            joint_trajectories=1, joint_epochs=1, validation_interval=1000,
        ))
    return trainer


def run_bench():
    settings = bench_settings()
    split = prepare_city("chengdu", settings)
    _fresh_trainer.split = split
    pool = split.development + split.test
    workload = [pool[i % len(pool)] for i in range(WORKLOAD_TRIPS)]
    total_points = sum(len(trajectory) for trajectory in workload)

    def run_epoch(batch_size):
        trainer = _fresh_trainer(settings, batch_size)
        label = ("sequential loop (batch size 1)" if batch_size == 1
                 else f"batched engine (batch size {batch_size})")
        report, _ = measure_training_throughput(
            lambda: trainer.fine_tune(workload, epochs=EPOCHS),
            total_points, num_trajectories=len(workload), epochs=EPOCHS,
            batch_size=batch_size, name=label)
        return report

    sequential = run_epoch(1)
    batched = {size: run_epoch(size) for size in BATCH_SIZES}

    lines = ["Training epoch throughput (fine-tuning workload)",
             f"  workload: {WORKLOAD_TRIPS} trips, {total_points} points, "
             f"{EPOCHS} epoch(s)",
             f"  {sequential.format()}"]
    speedups = {}
    for size, report in batched.items():
        speedups[size] = report.speedup_over(sequential)
        lines.append(f"  {report.format()}   [{speedups[size]:.2f}x]")
    text = "\n".join(lines)
    return {
        "text": text,
        "sequential": sequential,
        "batched": batched,
        "speedups": speedups,
    }


def test_batched_training_speedup_at_32(throughput):
    assert throughput["speedups"][32] >= MIN_SPEEDUP, throughput["text"]


def test_batched_training_speedup_at_64(throughput):
    assert throughput["speedups"][64] >= MIN_SPEEDUP, throughput["text"]


def test_bench_training_batch(benchmark, throughput):
    """Time one batched fine-tuning round over a 32-trajectory batch."""
    settings = bench_settings()
    split = _fresh_trainer.split
    pool = split.development + split.test
    rounds = [pool[i % len(pool)] for i in range(32)]

    def fresh(**_kwargs):
        # fine_tune extends the trainer's history, so every timed round gets
        # a fresh identically seeded trainer instead of a drifting one.
        return (_fresh_trainer(settings, 32),), {}

    def fine_tune_round(trainer):
        trainer.fine_tune(rounds, epochs=1)

    benchmark.pedantic(fine_tune_round, setup=fresh, rounds=5)
    assert throughput["sequential"].total_seconds > 0


if __name__ == "__main__":
    result = run_bench()
    record_result("train_throughput", result["text"])
    maybe_record_json("train_throughput", result)
