"""History refresh economics: delta swap vs full-snapshot swap vs rebuild.

The delta control plane's ledger. A serving fleet whose normal-route
history drifts has three ways to catch up, measured here side by side on
the *same* incremental drift:

* **delta swap** — ``swap_history`` fed the producer's store/pipeline, so
  the facade broadcasts a version-keyed :class:`~repro.history.
  HistoryDelta` of only the touched SD-pair groups (pickled once for the
  whole fleet on the process backend);
* **full swap** — the same refresh as a bare snapshot (no store, no origin
  delta), forcing the pre-delta behaviour: the whole corpus on the wire;
* **rebuild** — the alternative both retire: tear the service down and
  rebuild it from a model carrying the new history (re-pickling and
  re-spawning every shard, losing every in-flight stream).

Also measured: the copy-on-write ``store.extend`` vs re-indexing the full
history from scratch. And pinned throughout: after either swap form, the
service's labels on a post-refresh workload are identical to a freshly
built service's (0 mismatches), while streams in flight across the refresh
match the pre-refresh build.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_history_refresh.py
    PYTHONPATH=src python benchmarks/bench_history_refresh.py --smoke

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_history_refresh.py -s
"""

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from repro.history import RouteHistoryStore, clone_snapshot
from repro.experiments.common import prepare_city, train_rl4oasd

from conftest import bench_settings, maybe_record_json, record_result

WORKLOAD_TRIPS = 96
SHARD_COUNTS = (1, 2, 4)
#: The refresh must beat a full rebuild by at least this factor (the whole
#: point of the feature); tunable for noisy shared runners.
MIN_REFRESH_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_REFRESH_SPEEDUP", "1.0"))
#: The delta form must beat the full-snapshot form at every shard count.
MIN_DELTA_VS_FULL = float(
    os.environ.get("REPRO_BENCH_MIN_DELTA_VS_FULL", "1.0"))


def _drive(service, fleet, prefix, declare):
    ids = []
    for index, trajectory in enumerate(fleet):
        vehicle = (prefix, index)
        ids.append(vehicle)
        for position, segment in enumerate(trajectory.segments):
            if position == 0:
                service.ingest_blocking(
                    vehicle, segment,
                    destination=trajectory.destination if declare else None,
                    start_time_s=trajectory.start_time_s)
            else:
                service.ingest_blocking(vehicle, segment)
    return ids


def _measure_refresh(model, refreshed1, store, in_flight, after, *,
                     num_shards, backend):
    """Two refresh steps on one service: full-snapshot, then delta.

    The service starts on the model's base history, takes the first drift
    step as a bare snapshot (forced full broadcast), then the second —
    same-sized — drift step through the producer's store (delta broadcast).
    Returns ``(delta_s, full_s, rebuild_s, mismatches)``.
    """
    final = store.current()
    fresh_model = model.with_history(final)

    # References: the pre-refresh build for the in-flight streams, a fresh
    # build from the final snapshot for the post-refresh streams.
    with model.detection_service(num_shards=num_shards,
                                 backend="inprocess") as reference:
        ids = _drive(reference, in_flight, "a", declare=False)
        expected_in_flight = reference.finalize_many(ids)
    with fresh_model.detection_service(num_shards=num_shards,
                                       backend="inprocess") as reference:
        ids = _drive(reference, after, "b", declare=True)
        expected_after = reference.finalize_many(ids)

    with model.detection_service(num_shards=num_shards,
                                 backend=backend) as service:
        in_flight_ids = _drive(service, in_flight, "a", declare=False)
        # Step 1 — the pre-delta wire form: a bare cloned snapshot carries
        # neither store nor origin delta, so the whole corpus ships.
        started = time.perf_counter()
        service.swap_history(clone_snapshot(refreshed1))
        full_s = time.perf_counter() - started
        # Step 2 — the delta form: the store holds the contiguous chain
        # from the version every shard just acknowledged.
        started = time.perf_counter()
        service.swap_history(store)
        delta_s = time.perf_counter() - started
        metrics = service.metrics()
        assert metrics.full_swaps == 1, "step 1 must take the full path"
        assert metrics.delta_swaps == 1, "step 2 must take the delta path"
        after_ids = _drive(service, after, "b", declare=True)
        results_after = service.finalize_many(after_ids)
        results_in_flight = service.finalize_many(in_flight_ids)

    mismatches = sum(
        1 for expected, got in zip(expected_in_flight, results_in_flight)
        if expected.labels != got.labels)
    mismatches += sum(
        1 for expected, got in zip(expected_after, results_after)
        if expected.labels != got.labels)

    # The alternative both swap forms retire: rebuild the service wholesale
    # from the refreshed model (spawn + snapshot shipping), then prove it
    # can serve one stream.
    started = time.perf_counter()
    with fresh_model.detection_service(num_shards=num_shards,
                                       backend=backend) as rebuilt:
        _drive(rebuilt, after[:1], "probe", declare=True)
        rebuilt.finalize(("probe", 0))
    rebuild_s = time.perf_counter() - started
    return delta_s, full_s, rebuild_s, mismatches


def run_bench(smoke: bool = False):
    if smoke:
        settings = bench_settings(scale=0.15, joint_trajectories=30,
                                  joint_epochs=1, pretrain_epochs=2)
        shard_counts, trips = (1,), 24
        backends = ("inprocess",)
    else:
        settings = bench_settings(joint_trajectories=100)
        shard_counts, trips = SHARD_COUNTS, WORKLOAD_TRIPS
        backends = ("inprocess", "process")
    split = prepare_city("chengdu", settings)
    model, _ = train_rl4oasd(split, settings)
    workload = [split.test[i % len(split.test)] for i in range(trips)]
    in_flight, after = workload[: trips // 2], workload[trips // 2:]

    # Two equal-sized drift steps: the dev split arrives as "today's"
    # trajectories in two waves, so the full-form and delta-form swaps
    # carry the same incremental update in different wire forms.
    drift = list(split.development)
    drift1, drift2 = drift[: len(drift) // 2], drift[len(drift) // 2:]
    base = model.pipeline.history
    refreshed1 = base.extended(drift1, version=base.version + 1)
    store = RouteHistoryStore.from_snapshot(refreshed1)
    final = store.extend(drift2)

    # Copy-on-write extend vs re-indexing everything from scratch.
    cow_store = RouteHistoryStore.from_snapshot(base)
    started = time.perf_counter()
    cow_store.extend(drift1)
    extend_s = time.perf_counter() - started
    started = time.perf_counter()
    RouteHistoryStore(list(base.trajectories()) + drift1, base.slots_per_day)
    reindex_s = time.perf_counter() - started

    rows = []
    mismatches = 0
    speedups = {}
    delta_vs_full = {}
    for backend in backends:
        for num_shards in shard_counts:
            delta_s, full_s, rebuild_s, missed = _measure_refresh(
                model, refreshed1, store, in_flight, after,
                num_shards=num_shards, backend=backend)
            mismatches += missed
            speedup = rebuild_s / delta_s if delta_s else float("inf")
            speedups[(backend, num_shards)] = speedup
            delta_vs_full[(backend, num_shards)] = (
                full_s / delta_s if delta_s else float("inf"))
            rows.append(
                f"  {backend:9s} x{num_shards}: delta swap "
                f"{delta_s * 1e3:7.1f} ms   full swap {full_s * 1e3:7.1f} ms"
                f"   rebuild {rebuild_s * 1e3:7.1f} ms   "
                f"(delta {full_s / delta_s if delta_s else float('inf'):5.1f}x"
                f" vs full, {speedup:5.1f}x vs rebuild, "
                f"{missed} mismatches)")

    cores = os.cpu_count() or 1
    text_lines = [
        "History refresh: delta swap vs full-snapshot swap vs rebuild"
        + (" (smoke)" if smoke else ""),
        f"  workload: {len(workload)} trips "
        f"({len(in_flight)} in flight across the refresh), "
        f"history {len(base)} -> {len(final)} trajectories "
        f"(v{base.version} -> v{final.version}, two drift steps of "
        f"{len(drift1)}/{len(drift2)} trips), {cores} core(s)",
        f"  copy-on-write extend: {extend_s * 1e3:.1f} ms   "
        f"full re-index: {reindex_s * 1e3:.1f} ms   "
        f"({reindex_s / extend_s if extend_s else float('inf'):.1f}x)",
    ]
    text_lines.extend(rows)
    text_lines.append(f"  label mismatches vs fresh build: {mismatches}")
    return {
        "text": "\n".join(text_lines),
        "mismatches": mismatches,
        "speedups": speedups,
        "delta_vs_full": delta_vs_full,
        "extend_s": extend_s,
        "reindex_s": reindex_s,
        "cores": cores,
        "smoke": smoke,
    }


@pytest.fixture(scope="module")
def history_refresh():
    result = run_bench()
    record_result("history_refresh", result["text"])
    return result


def test_refresh_is_label_identical_to_fresh_build(history_refresh):
    assert history_refresh["mismatches"] == 0


def test_delta_swap_beats_full_swap_at_every_shard_count(history_refresh):
    for key, ratio in history_refresh["delta_vs_full"].items():
        assert ratio >= MIN_DELTA_VS_FULL, (key, history_refresh["text"])


def test_refresh_beats_service_rebuild(history_refresh):
    best = max(history_refresh["speedups"].values())
    assert best >= MIN_REFRESH_SPEEDUP, history_refresh["text"]


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    result = run_bench(smoke=smoke)
    print(result["text"])
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "history_refresh.txt").write_text(
        result["text"] + "\n", encoding="utf-8")
    maybe_record_json("history_refresh", result)
    if result["mismatches"]:
        raise SystemExit(
            "label mismatch between the refreshed and freshly-built service")
    if smoke:
        return
    for key, ratio in result["delta_vs_full"].items():
        if ratio < MIN_DELTA_VS_FULL:
            raise SystemExit(
                f"delta swap at {key} only {ratio:.2f}x vs the full form "
                f"(floor {MIN_DELTA_VS_FULL:.2f}x)")
    best = max(result["speedups"].values())
    if best < MIN_REFRESH_SPEEDUP:
        raise SystemExit(
            f"best refresh speedup {best:.2f}x below the "
            f"{MIN_REFRESH_SPEEDUP:.2f}x floor")
    process4 = result["speedups"].get(("process", 4))
    if process4 is not None and process4 < MIN_REFRESH_SPEEDUP:
        raise SystemExit(
            f"delta swap at 4 process shards only {process4:.2f}x vs "
            f"rebuild (floor {MIN_REFRESH_SPEEDUP:.2f}x) — the regression "
            f"this plane exists to fix")


if __name__ == "__main__":
    main()
