"""History hot-refresh: ``swap_history`` vs rebuilding the whole service.

The tentpole's economics, measured. A serving fleet whose normal-route
history goes stale used to require tearing the service down and rebuilding
it from a model carrying the new history (re-pickling and re-spawning every
shard, losing every in-flight stream). ``DetectionService.swap_history``
replaces that with one atomic broadcast of a versioned snapshot. This
benchmark:

* builds a drifted history (new trajectories appended through the
  copy-on-write :class:`~repro.history.RouteHistoryStore`),
* measures the **refresh latency** of ``swap_history`` against the **rebuild
  latency** of constructing a fresh service from the refreshed model —
  in-process and multi-process backends alike,
* measures the **copy-on-write win**: `store.extend` of a small delta vs
  re-indexing the full history from scratch,
* and pins the differential contract the whole feature rests on: after the
  swap, the service's labels on a post-refresh workload are identical to the
  freshly-built service's (0 mismatches), while streams that were in flight
  across the refresh match the pre-refresh build.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_history_refresh.py
    PYTHONPATH=src python benchmarks/bench_history_refresh.py --smoke

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_history_refresh.py -s
"""

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from repro.history import RouteHistoryStore
from repro.experiments.common import prepare_city, train_rl4oasd
from repro.serve import serve_fleet

from conftest import bench_settings, maybe_record_json, record_result

CONCURRENCY = 64
WORKLOAD_TRIPS = 96
SHARD_COUNTS = (1, 2, 4)
#: The refresh must beat a full rebuild by at least this factor (the whole
#: point of the feature); tunable for noisy shared runners.
MIN_REFRESH_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_REFRESH_SPEEDUP", "1.0"))


def _drive(service, fleet, prefix, declare):
    ids = []
    for index, trajectory in enumerate(fleet):
        vehicle = (prefix, index)
        ids.append(vehicle)
        for position, segment in enumerate(trajectory.segments):
            if position == 0:
                service.ingest_blocking(
                    vehicle, segment,
                    destination=trajectory.destination if declare else None,
                    start_time_s=trajectory.start_time_s)
            else:
                service.ingest_blocking(vehicle, segment)
    return ids


def _measure_refresh(model, refreshed, in_flight, after, *, num_shards,
                     backend):
    """One refresh cycle: returns (swap_s, rebuild_s, mismatches)."""
    fresh_model = model.with_history(refreshed)

    # References: the pre-refresh build for the in-flight streams, a fresh
    # build from the refreshed snapshot for the post-refresh streams.
    with model.detection_service(num_shards=num_shards,
                                 backend="inprocess") as reference:
        ids = _drive(reference, in_flight, "a", declare=False)
        expected_in_flight = reference.finalize_many(ids)
    with fresh_model.detection_service(num_shards=num_shards,
                                       backend="inprocess") as reference:
        ids = _drive(reference, after, "b", declare=True)
        expected_after = reference.finalize_many(ids)

    with model.detection_service(num_shards=num_shards,
                                 backend=backend) as service:
        in_flight_ids = _drive(service, in_flight, "a", declare=False)
        started = time.perf_counter()
        service.swap_history(refreshed)
        swap_s = time.perf_counter() - started
        after_ids = _drive(service, after, "b", declare=True)
        results_after = service.finalize_many(after_ids)
        results_in_flight = service.finalize_many(in_flight_ids)

    mismatches = sum(
        1 for expected, got in zip(expected_in_flight, results_in_flight)
        if expected.labels != got.labels)
    mismatches += sum(
        1 for expected, got in zip(expected_after, results_after)
        if expected.labels != got.labels)

    # The alternative this feature retires: rebuild the service wholesale
    # from the refreshed model (spawn + snapshot shipping), then prove it
    # can serve one stream.
    started = time.perf_counter()
    with fresh_model.detection_service(num_shards=num_shards,
                                       backend=backend) as rebuilt:
        _drive(rebuilt, after[:1], "probe", declare=True)
        rebuilt.finalize(("probe", 0))
    rebuild_s = time.perf_counter() - started
    return swap_s, rebuild_s, mismatches


def run_bench(smoke: bool = False):
    if smoke:
        settings = bench_settings(scale=0.15, joint_trajectories=30,
                                  joint_epochs=1, pretrain_epochs=2)
        shard_counts, trips = (1,), 24
        backends = ("inprocess",)
    else:
        settings = bench_settings(joint_trajectories=100)
        shard_counts, trips = SHARD_COUNTS, WORKLOAD_TRIPS
        backends = ("inprocess", "process")
    split = prepare_city("chengdu", settings)
    model, _ = train_rl4oasd(split, settings)
    workload = [split.test[i % len(split.test)] for i in range(trips)]
    in_flight, after = workload[: trips // 2], workload[trips // 2:]

    # The drifted history: the dev split arrives as "today's" trajectories.
    delta = list(split.development)
    refreshed = model.pipeline.history.extended(
        delta, version=model.pipeline.history.version + 1)

    # Copy-on-write extend vs re-indexing everything from scratch.
    store = RouteHistoryStore.from_snapshot(model.pipeline.history)
    started = time.perf_counter()
    store.extend(delta)
    extend_s = time.perf_counter() - started
    started = time.perf_counter()
    RouteHistoryStore(list(model.pipeline.history.trajectories()) + delta,
                      model.pipeline.history.slots_per_day)
    reindex_s = time.perf_counter() - started

    rows = []
    mismatches = 0
    speedups = {}
    for backend in backends:
        for num_shards in shard_counts:
            swap_s, rebuild_s, missed = _measure_refresh(
                model, refreshed, in_flight, after,
                num_shards=num_shards, backend=backend)
            mismatches += missed
            speedup = rebuild_s / swap_s if swap_s else float("inf")
            speedups[(backend, num_shards)] = speedup
            rows.append(
                f"  {backend:9s} x{num_shards}: swap_history "
                f"{swap_s * 1e3:8.1f} ms   rebuild {rebuild_s * 1e3:8.1f} ms"
                f"   ({speedup:5.1f}x faster, {missed} mismatches)")

    cores = os.cpu_count() or 1
    text_lines = [
        "History hot-refresh vs service rebuild"
        + (" (smoke)" if smoke else ""),
        f"  workload: {len(workload)} trips "
        f"({len(in_flight)} in flight across the refresh), "
        f"history {len(model.pipeline.history)} -> {len(refreshed)} "
        f"trajectories (v{refreshed.version}), {cores} core(s)",
        f"  copy-on-write extend: {extend_s * 1e3:.1f} ms   "
        f"full re-index: {reindex_s * 1e3:.1f} ms   "
        f"({reindex_s / extend_s if extend_s else float('inf'):.1f}x)",
    ]
    text_lines.extend(rows)
    text_lines.append(f"  label mismatches vs fresh build: {mismatches}")
    return {
        "text": "\n".join(text_lines),
        "mismatches": mismatches,
        "speedups": speedups,
        "extend_s": extend_s,
        "reindex_s": reindex_s,
        "cores": cores,
        "smoke": smoke,
    }


@pytest.fixture(scope="module")
def history_refresh():
    result = run_bench()
    record_result("history_refresh", result["text"])
    return result


def test_refresh_is_label_identical_to_fresh_build(history_refresh):
    assert history_refresh["mismatches"] == 0


def test_refresh_beats_service_rebuild(history_refresh):
    best = max(history_refresh["speedups"].values())
    assert best >= MIN_REFRESH_SPEEDUP, history_refresh["text"]


def main() -> None:
    smoke = "--smoke" in sys.argv[1:]
    result = run_bench(smoke=smoke)
    print(result["text"])
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "history_refresh.txt").write_text(
        result["text"] + "\n", encoding="utf-8")
    maybe_record_json("history_refresh", result)
    if result["mismatches"]:
        raise SystemExit(
            "label mismatch between the refreshed and freshly-built service")
    if smoke:
        return
    best = max(result["speedups"].values())
    if best < MIN_REFRESH_SPEEDUP:
        raise SystemExit(
            f"best refresh speedup {best:.2f}x below the "
            f"{MIN_REFRESH_SPEEDUP:.2f}x floor")


if __name__ == "__main__":
    main()
