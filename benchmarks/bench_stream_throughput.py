"""Fleet throughput: the batched StreamEngine vs. the per-trajectory loop.

Replays the same workload twice — once through ``OnlineDetector.detect`` one
trajectory at a time, once through ``StreamEngine`` with 64 concurrent
streams — verifies the labels are identical, and reports points/sec for both.
The engine's batched tick amortizes the LSTM and policy matmuls across the
fleet and reuses per-segment features through the LRU cache, so it should
clear the per-trajectory loop by >= 3x.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_stream_throughput.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_stream_throughput.py -s
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from repro.core import replay_fleet
from repro.eval import measure_throughput
from repro.experiments.common import prepare_city, train_rl4oasd

from conftest import bench_settings, maybe_record_json, record_result

CONCURRENCY = 64
WORKLOAD_TRIPS = 256
#: Required points/sec advantage of the fleet engine; override to loosen on
#: noisy shared runners, e.g. REPRO_BENCH_MIN_SPEEDUP=2.
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "3.0"))


@pytest.fixture(scope="module")
def throughput():
    result = run_bench()
    record_result("stream_throughput", result["text"])
    return result


def run_bench():
    settings = bench_settings(joint_trajectories=100)
    split = prepare_city("chengdu", settings)
    model, _ = train_rl4oasd(split, settings)
    workload = [split.test[i % len(split.test)] for i in range(WORKLOAD_TRIPS)]
    total_points = sum(len(trajectory) for trajectory in workload)

    detector = model.detector()
    single, single_results = measure_throughput(
        lambda: [detector.detect(trajectory) for trajectory in workload],
        total_points, name="OnlineDetector (one stream at a time)",
        num_trajectories=len(workload))

    engine = model.stream_engine()
    fleet, fleet_results = measure_throughput(
        lambda: replay_fleet(engine, workload, concurrency=CONCURRENCY),
        total_points, name=f"StreamEngine ({CONCURRENCY} concurrent streams)",
        num_trajectories=len(workload))

    mismatches = sum(
        1 for reference, result in zip(single_results, fleet_results)
        if reference.labels != result.labels)
    speedup = fleet.speedup_over(single)
    text = "\n".join([
        "Fleet streaming throughput",
        f"  workload: {len(workload)} trips, {total_points} points",
        f"  {single.format()}",
        f"  {fleet.format()}",
        f"  speedup: {speedup:.2f}x   label mismatches: {mismatches}",
        f"  segment cache: {engine.cache.hits} hits / "
        f"{engine.cache.misses} misses ({engine.cache.hit_rate:.1%})",
    ])
    return {
        "text": text,
        "speedup": speedup,
        "mismatches": mismatches,
        "single": single,
        "fleet": fleet,
        "model": model,
        "workload": workload,
    }


def test_stream_engine_matches_single_stream_labels(throughput):
    assert throughput["mismatches"] == 0


def test_stream_engine_speedup_at_64_streams(throughput):
    assert throughput["speedup"] >= MIN_SPEEDUP, throughput["text"]


def test_bench_stream_tick(benchmark, throughput):
    """Time one fleet round: one ingest per vehicle plus one batched tick."""
    engine = throughput["model"].stream_engine()
    workload = throughput["workload"]
    feeds = []
    for vehicle in range(CONCURRENCY):
        trajectory = workload[vehicle % len(workload)]
        engine.ingest(vehicle, trajectory.segments[0],
                      destination=trajectory.destination,
                      start_time_s=trajectory.start_time_s)
        feeds.append((vehicle, trajectory.segments))
    cursor = [1]

    def fleet_round():
        # Cycle each trip's own segments so the streams never run dry.
        position = cursor[0]
        cursor[0] += 1
        for vehicle, segments in feeds:
            engine.ingest(vehicle, segments[position % len(segments)])
        engine.tick()

    benchmark(fleet_round)


def main() -> None:
    result = run_bench()
    print(result["text"])
    maybe_record_json("stream_throughput", result)
    if result["mismatches"]:
        raise SystemExit("label mismatch between the two paths")
    if result["speedup"] < MIN_SPEEDUP:
        raise SystemExit(
            f"speedup {result['speedup']:.2f}x below the {MIN_SPEEDUP:.1f}x floor")


if __name__ == "__main__":
    main()
