"""Figure 7 — concept-drift case study (popular and unpopular routes swap)."""

import pytest

from repro.experiments.fig7 import run_fig7

from conftest import bench_settings, record_result


@pytest.fixture(scope="module")
def fig7():
    settings = bench_settings(scale=0.25, joint_trajectories=80,
                              pretrain_trajectories=150)
    result = run_fig7(settings, n_parts=2, max_cases_per_part=2)
    record_result("fig7_drift_case", result.format())
    return result


def test_cases_cover_both_parts(fig7):
    parts = {case.part for case in fig7.cases}
    assert 0 in parts
    assert 1 in parts


def test_labels_align_with_ground_truth_length(fig7):
    for case in fig7.cases:
        assert len(case.p1_labels) == len(case.ground_truth)
        assert len(case.ft_labels) == len(case.ground_truth)


def test_bench_fig7_drift_schedule(benchmark, fig7):
    """Time the drift schedule's route-weight rotation (the data-side mechanism)."""
    from repro.datagen import DriftSchedule

    schedule = DriftSchedule(n_parts=8, rotation_per_part=1)
    benchmark(schedule.route_weights, [0.55, 0.45], 5, True)
