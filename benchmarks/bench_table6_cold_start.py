"""Table VI — cold-start study (dropping historical trajectories)."""

import pytest

from repro.experiments.table6 import run_table6

from conftest import bench_settings, record_result


@pytest.fixture(scope="module")
def table6():
    settings = bench_settings(joint_trajectories=120)
    result = run_table6(settings, drop_rates=(0.0, 0.4, 0.8))
    record_result("table6_cold_start", result.format())
    return result


def test_graceful_degradation(table6):
    """Effectiveness degrades only mildly as history is dropped (paper: ~6%)."""
    f1 = table6.f1_by_drop_rate
    assert f1[0.8] > 0.5 * f1[0.0]


def test_bench_table6_drop(benchmark, table6):
    """Time the per-SD-pair history dropping operation."""
    from repro.datagen import tiny_dataset
    from repro.trajectory.sdpairs import SDPairIndex

    dataset = tiny_dataset(seed=5)
    index = SDPairIndex(dataset.trajectories)
    benchmark(index.drop_fraction, 0.5)
